//! Pluggable distributed-indexing strategies.
//!
//! The paper evaluates three indexing policies — the single-term full-list
//! baseline, Highly Discriminative Keys and Query-Driven Indexing. Earlier
//! revisions hard-coded them as a closed enum inside the network driver; this
//! module turns the policy into an object-safe [`Strategy`] trait so that new
//! policies (e.g. skew-aware key placement or cost-based sketch selection, see
//! PAPERS.md) plug in without touching `network.rs`:
//!
//! * [`Strategy::build_index`] plans and publishes the keys for every peer's
//!   documents through an [`IndexerCtx`];
//! * [`Strategy::lattice_config`] bounds how the query lattice is explored for
//!   this strategy;
//! * [`Strategy::post_query`] observes every finished query through a
//!   [`QueryCtx`] and may activate or deactivate keys on demand;
//! * [`Strategy::truncation_k`] bounds posting-list truncation.
//!
//! The built-in implementations are [`SingleTermFull`], [`Hdk`] and [`Qdi`].

use crate::fault::FaultPlane;
use crate::global_index::{GlobalIndex, KeyIndexEntry, KeyUsageStats};
use crate::hdk::{self, HdkConfig, HdkLevelReport};
use crate::key::TermKey;
use crate::lattice::{LatticeConfig, LatticeResult, NodeOutcome};
use crate::peer::AlvisPeer;
use crate::plan::PlanHints;
use crate::posting::TruncatedPostingList;
use crate::qdi::{activation_decision, is_obsolete, QdiConfig, QdiReport};
use crate::ranking::{score_local_postings, GlobalRankingStats};
use alvisp2p_netsim::{TrafficCategory, WireSize};
use alvisp2p_textindex::bm25::Bm25Params;
use alvisp2p_textindex::TermId;
use std::collections::BTreeSet;

/// A distributed indexing policy.
///
/// Object safe: networks hold strategies as `Arc<dyn Strategy>`, so user
/// crates can define their own policies and hand them to
/// [`crate::network::AlvisNetworkBuilder::strategy`].
pub trait Strategy: std::fmt::Debug + Send + Sync {
    /// A short label used in reports and experiment output.
    fn label(&self) -> &str;

    /// The posting-list truncation bound used when storing entries in the
    /// global index (effectively unbounded for the single-term baseline).
    fn truncation_k(&self) -> usize;

    /// The document-frequency bound separating *discriminative* from
    /// *frequent* keys in construction reports. Strategies without the
    /// distinction report everything as discriminative.
    fn df_max(&self) -> u64 {
        u64::MAX
    }

    /// Builds the distributed index: plan the keys each peer publishes for its
    /// documents and publish them through `ctx`. Returns one report per
    /// construction level.
    fn build_index(&self, ctx: &mut IndexerCtx<'_>) -> Vec<HdkLevelReport>;

    /// Adapts the query-lattice exploration parameters to this strategy.
    /// The default uses the network-level configuration unchanged.
    fn lattice_config(&self, base: &LatticeConfig) -> LatticeConfig {
        base.clone()
    }

    /// What query planners may assume about this strategy's index shape: the
    /// longest key length it can have indexed, whether probing missing keys
    /// still has value (query-driven strategies collect usage statistics from
    /// them), and a prior that a multi-term candidate is indexed. Cost-based
    /// planners ([`crate::plan::GreedyCost`]) use the hints to bias the probe
    /// schedule. The conservative default assumes any key may be indexed.
    fn plan_hints(&self) -> PlanHints {
        PlanHints::default()
    }

    /// Observes a finished query; on-demand strategies use this to activate
    /// popular keys and evict obsolete ones. The default does nothing.
    fn post_query(&self, ctx: &mut QueryCtx<'_>, query_key: &TermKey, result: &LatticeResult) {
        let _ = (ctx, query_key, result);
    }

    /// Whether the index adapts to the query stream (via [`Strategy::post_query`]).
    /// Experiments warm adaptive strategies up before measuring their steady state.
    fn is_adaptive(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Contexts handed to strategies
// ---------------------------------------------------------------------------

/// The network state a strategy sees while building the distributed index.
pub struct IndexerCtx<'a> {
    peers: &'a [AlvisPeer],
    global: &'a mut GlobalIndex,
    ranking: &'a GlobalRankingStats,
    bm25: Bm25Params,
    faults: FaultPlane,
}

impl<'a> IndexerCtx<'a> {
    /// Assembles a context (called by the network driver).
    pub fn new(
        peers: &'a [AlvisPeer],
        global: &'a mut GlobalIndex,
        ranking: &'a GlobalRankingStats,
        bm25: Bm25Params,
    ) -> Self {
        IndexerCtx {
            peers,
            global,
            ranking,
            bm25,
            faults: FaultPlane::NoFaults,
        }
    }

    /// Routes every publication of this construction run through the given
    /// fault plane: a publication the plane drops is charged but not applied,
    /// queued for acknowledgement-driven re-publication instead (see
    /// [`GlobalIndex::publish_postings_faulty`]). A no-op under
    /// [`FaultPlane::NoFaults`] — publications stay byte-identical to the
    /// fault-free path.
    pub fn with_faults(mut self, plane: FaultPlane) -> Self {
        self.faults = plane;
        self
    }

    /// The participating peers.
    pub fn peers(&self) -> &[AlvisPeer] {
        self.peers
    }

    /// Read access to the global index under construction.
    pub fn global(&self) -> &GlobalIndex {
        &*self.global
    }

    /// The aggregated global ranking statistics.
    pub fn ranking(&self) -> &GlobalRankingStats {
        self.ranking
    }

    /// The BM25 parameters every scoring component uses.
    pub fn bm25(&self) -> Bm25Params {
        self.bm25
    }

    /// Scores peer `peer_index`'s local postings for `key`, truncated to
    /// `capacity`.
    pub fn score_postings(
        &self,
        peer_index: usize,
        key: &TermKey,
        capacity: usize,
    ) -> TruncatedPostingList {
        score_local_postings(
            self.peers[peer_index].index(),
            key,
            self.ranking,
            self.bm25,
            capacity,
        )
    }

    /// Publishes peer `peer_index`'s contribution for `key` into the global
    /// index. Empty lists are skipped. Returns whether anything was published.
    pub fn publish(&mut self, peer_index: usize, key: &TermKey, capacity: usize) -> bool {
        let list = self.score_postings(peer_index, key, capacity);
        if list.is_empty() {
            return false;
        }
        let _ = if self.faults.is_active() {
            self.global
                .publish_postings_faulty(peer_index, key, &list, capacity, &self.faults)
        } else {
            self.global
                .publish_postings(peer_index, key, &list, capacity)
        };
        true
    }

    /// Charges strategy-level coordination traffic to the indexing category.
    pub fn charge_indexing(&mut self, bytes: usize) {
        self.global.charge(TrafficCategory::Indexing, bytes);
    }

    /// Level 1 of every strategy: each peer publishes a posting-list
    /// contribution for every term of its local vocabulary, truncated to
    /// `capacity`. Returns the level report (using `df_max` to separate
    /// discriminative from frequent keys).
    pub fn publish_single_term_level(&mut self, capacity: usize, df_max: u64) -> HdkLevelReport {
        let mut candidates = 0usize;
        for peer_index in 0..self.peers.len() {
            // Sorted so the publication sequence (and therefore which
            // publications a seeded fault plane drops) is deterministic —
            // the vocabulary map itself iterates in per-process random order.
            let mut vocabulary: Vec<TermId> =
                self.peers[peer_index].index().vocabulary_ids().collect();
            vocabulary.sort_unstable();
            for term in vocabulary {
                let key = TermKey::from_term_ids([term]);
                // A peer publishes from its own overlay node.
                if self.publish(peer_index, &key, capacity) {
                    candidates += 1;
                }
            }
        }
        let (discriminative, frequent) = self.level_key_counts(1, df_max);
        HdkLevelReport {
            level: 1,
            candidates,
            discriminative,
            frequent,
        }
    }

    /// Counts the activated keys of `level`, split into discriminative
    /// (`full_df <= df_max`) and frequent ones.
    pub fn level_key_counts(&self, level: usize, df_max: u64) -> (usize, usize) {
        let mut discriminative = 0usize;
        let mut frequent = 0usize;
        for e in self.global.entries() {
            if e.activated && e.key.len() == level {
                if e.postings.full_df() > df_max {
                    frequent += 1;
                } else {
                    discriminative += 1;
                }
            }
        }
        (discriminative, frequent)
    }
}

/// The network state a strategy sees after each query.
pub struct QueryCtx<'a> {
    peers: &'a [AlvisPeer],
    global: &'a mut GlobalIndex,
    ranking: &'a GlobalRankingStats,
    bm25: Bm25Params,
    seq: u64,
    report: &'a mut QdiReport,
}

impl<'a> QueryCtx<'a> {
    /// Assembles a context (called by the network driver).
    pub fn new(
        peers: &'a [AlvisPeer],
        global: &'a mut GlobalIndex,
        ranking: &'a GlobalRankingStats,
        bm25: Bm25Params,
        seq: u64,
        report: &'a mut QdiReport,
    ) -> Self {
        QueryCtx {
            peers,
            global,
            ranking,
            bm25,
            seq,
            report,
        }
    }

    /// The global sequence number of the query that just finished.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// A key's usage statistics, if the responsible peer tracks it.
    pub fn usage(&self, key: &TermKey) -> Option<KeyUsageStats> {
        self.global.usage(key)
    }

    /// Iterates over every entry of the global index.
    pub fn entries(&self) -> impl Iterator<Item = &KeyIndexEntry> {
        self.global.entries()
    }

    /// The strategy/behaviour counters accumulated by the network.
    pub fn report(&mut self) -> &mut QdiReport {
        self.report
    }

    /// The on-demand indexing step: the responsible peer acquires a bounded
    /// top-k posting list for `key` from the peers holding matching documents
    /// and stores it. Acquisition traffic is charged to the indexing category
    /// and the activation counters are updated. Returns whether the key was
    /// stored.
    pub fn activate_key(&mut self, key: &TermKey, capacity: usize) -> bool {
        let mut merged = TruncatedPostingList::new(capacity);
        let mut acquisition_bytes = 0usize;
        for peer in self.peers {
            let list = score_local_postings(peer.index(), key, self.ranking, self.bm25, capacity);
            if list.is_empty() {
                continue;
            }
            // Request to the contributing peer + its response carrying the
            // local top-k.
            acquisition_bytes += 48 + key.wire_size() + list.wire_size();
            merged.merge(&list);
        }
        self.global
            .charge(TrafficCategory::Indexing, acquisition_bytes);
        let Ok(responsible) = self.global.dht().responsible_for(key.ring_id()) else {
            return false;
        };
        self.global.store_acquired(responsible, key, merged);
        self.report.activations += 1;
        self.report.acquisition_bytes += acquisition_bytes as u64;
        true
    }

    /// Deactivates a key (keeping its usage statistics) and counts the
    /// eviction. Returns whether the key was active.
    pub fn deactivate_key(&mut self, key: &TermKey) -> bool {
        let deactivated = self.global.deactivate(key);
        if deactivated {
            self.report.evictions += 1;
        }
        deactivated
    }
}

// ---------------------------------------------------------------------------
// Built-in strategies
// ---------------------------------------------------------------------------

/// The single-term baseline of Zhang & Suel (reference \[11\] of the paper):
/// every term's **complete** posting list is stored in the DHT and shipped to
/// the querying peer. Does not scale in bandwidth — that is the point of
/// comparing against it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SingleTermFull;

/// Effectively unbounded truncation for the baseline (kept well below
/// `usize::MAX` so byte arithmetic cannot overflow).
const UNBOUNDED_K: usize = usize::MAX / 4;

impl Strategy for SingleTermFull {
    fn label(&self) -> &str {
        "single-term"
    }

    fn truncation_k(&self) -> usize {
        UNBOUNDED_K
    }

    fn build_index(&self, ctx: &mut IndexerCtx<'_>) -> Vec<HdkLevelReport> {
        vec![ctx.publish_single_term_level(UNBOUNDED_K, self.df_max())]
    }

    fn lattice_config(&self, base: &LatticeConfig) -> LatticeConfig {
        // The baseline has no multi-term keys: only the single terms are
        // fetched, each with its complete posting list.
        LatticeConfig {
            prune_below_truncated: false,
            max_probe_len: 1,
            max_probes: base.max_probes,
        }
    }

    fn plan_hints(&self) -> PlanHints {
        PlanHints {
            max_indexed_len: 1,
            probe_unindexed: false,
            multi_term_prior: 0.0,
        }
    }
}

/// Highly Discriminative Keys: document-frequency-driven key expansion with
/// truncated posting lists (§3 of the paper).
#[derive(Clone, Debug, Default)]
pub struct Hdk {
    /// The expansion parameters.
    pub config: HdkConfig,
}

impl Hdk {
    /// A strategy with the given configuration.
    pub fn new(config: HdkConfig) -> Self {
        Hdk { config }
    }
}

impl From<HdkConfig> for Hdk {
    fn from(config: HdkConfig) -> Self {
        Hdk { config }
    }
}

impl Strategy for Hdk {
    fn label(&self) -> &str {
        "hdk"
    }

    fn truncation_k(&self) -> usize {
        self.config.truncation_k
    }

    fn df_max(&self) -> u64 {
        self.config.df_max as u64
    }

    fn plan_hints(&self) -> PlanHints {
        PlanHints {
            // HDK never publishes keys longer than its expansion bound.
            max_indexed_len: self.config.max_key_len,
            probe_unindexed: false,
            // Only combinations of frequent terms that co-occur get indexed.
            multi_term_prior: 0.4,
        }
    }

    fn build_index(&self, ctx: &mut IndexerCtx<'_>) -> Vec<HdkLevelReport> {
        let config = &self.config;
        let mut levels = vec![ctx.publish_single_term_level(config.truncation_k, self.df_max())];

        // Globally frequent single terms (observed by the responsible peers).
        let frequent_terms: BTreeSet<TermId> = ctx
            .global()
            .entries()
            .filter(|e| {
                e.activated && e.key.is_single() && e.postings.full_df() > config.df_max as u64
            })
            .map(|e| e.key.term_ids()[0])
            .collect();
        // Every peer learns which of its local terms are frequent (a small
        // notification from each responsible peer, piggybacked on the
        // publication acknowledgement).
        for peer_index in 0..ctx.peers().len() {
            let local_frequent = ctx.peers()[peer_index]
                .index()
                .vocabulary_ids()
                .filter(|t| frequent_terms.contains(t))
                .count();
            ctx.charge_indexing(9 * local_frequent + 16);
        }

        let mut frequent_parents: BTreeSet<TermKey> = hdk::single_term_keys(&frequent_terms);

        for level in 2..=config.max_key_len {
            if frequent_parents.is_empty() {
                break;
            }
            let mut level_candidates: BTreeSet<TermKey> = BTreeSet::new();
            for peer_index in 0..ctx.peers().len() {
                // Candidates this peer generates from its local documents.
                let docs = ctx.peers()[peer_index].index().documents();
                let mut peer_candidates: BTreeSet<TermKey> = BTreeSet::new();
                for doc in docs {
                    let doc_terms = ctx.peers()[peer_index].index().doc_term_positions(doc);
                    for cand in hdk::generate_doc_candidates(
                        &doc_terms,
                        &frequent_parents,
                        &frequent_terms,
                        level,
                        config,
                    ) {
                        peer_candidates.insert(cand);
                    }
                }
                // Publish this peer's contribution for each of its candidates.
                for key in &peer_candidates {
                    if ctx.publish(peer_index, key, config.truncation_k) {
                        level_candidates.insert(key.clone());
                    }
                }
            }

            let (discriminative, frequent) = ctx.level_key_counts(level, self.df_max());
            levels.push(HdkLevelReport {
                level,
                candidates: level_candidates.len(),
                discriminative,
                frequent,
            });

            // The frequent keys of this level seed the next level's expansions.
            frequent_parents = ctx
                .global()
                .entries()
                .filter(|e| {
                    e.activated
                        && e.key.len() == level
                        && e.postings.full_df() > config.df_max as u64
                })
                .map(|e| e.key.clone())
                .collect();
        }
        levels
    }
}

/// Query-Driven Indexing: single-term truncated index plus on-demand
/// activation of popular term combinations and eviction of obsolete ones
/// (§4 of the paper).
#[derive(Clone, Debug, Default)]
pub struct Qdi {
    /// The activation/eviction parameters.
    pub config: QdiConfig,
}

impl Qdi {
    /// A strategy with the given configuration.
    pub fn new(config: QdiConfig) -> Self {
        Qdi { config }
    }
}

impl From<QdiConfig> for Qdi {
    fn from(config: QdiConfig) -> Self {
        Qdi { config }
    }
}

impl Strategy for Qdi {
    fn label(&self) -> &str {
        "qdi"
    }

    fn truncation_k(&self) -> usize {
        self.config.truncation_k
    }

    fn df_max(&self) -> u64 {
        self.config.truncation_k as u64
    }

    fn plan_hints(&self) -> PlanHints {
        PlanHints {
            max_indexed_len: self.config.max_key_len,
            // Probes of missing keys feed the responsible peers' usage
            // statistics — they are what triggers on-demand activation, so a
            // cost-based planner must not drop them.
            probe_unindexed: true,
            // Multi-term keys exist only after enough popularity.
            multi_term_prior: 0.25,
        }
    }

    fn build_index(&self, ctx: &mut IndexerCtx<'_>) -> Vec<HdkLevelReport> {
        vec![ctx.publish_single_term_level(self.config.truncation_k, self.df_max())]
    }

    fn post_query(&self, ctx: &mut QueryCtx<'_>, _query_key: &TermKey, result: &LatticeResult) {
        self.activation_pass(ctx, result);
        self.eviction_pass(ctx);
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

impl Qdi {
    /// Checks every probed-but-missing multi-term key for activation.
    fn activation_pass(&self, ctx: &mut QueryCtx<'_>, result: &LatticeResult) {
        let config = &self.config;
        let missing_keys: Vec<TermKey> = result
            .trace
            .nodes
            .iter()
            .filter(|(k, o)| matches!(o, NodeOutcome::Missing) && k.len() >= 2)
            .map(|(k, _)| k.clone())
            .collect();
        for key in missing_keys {
            let Some(usage) = ctx.usage(&key) else {
                continue;
            };
            // Redundancy: are complete results for this key already available
            // from a retrieved subset key?
            let redundant = result
                .retrieved
                .iter()
                .any(|(k2, list)| k2.is_subset_of(&key) && !list.is_truncated());
            let decision = activation_decision(&usage, false, key.len(), Some(!redundant), config);
            if !decision.should_activate() {
                continue;
            }
            ctx.activate_key(&key, config.truncation_k);
        }
    }

    /// Periodically deactivates keys that have not been queried within the
    /// obsolescence window.
    fn eviction_pass(&self, ctx: &mut QueryCtx<'_>) {
        let config = &self.config;
        let seq = ctx.seq();
        if config.eviction_period == 0 || !seq.is_multiple_of(config.eviction_period) {
            return;
        }
        let obsolete: Vec<TermKey> = ctx
            .entries()
            .filter(|e| e.activated && e.key.len() >= 2 && is_obsolete(&e.usage, seq, config))
            .map(|e| e.key.clone())
            .collect();
        for key in obsolete {
            ctx.deactivate_key(&key);
        }
    }
}
