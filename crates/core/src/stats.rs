//! Experiment metrics.
//!
//! Retrieval-quality measures (precision, recall, overlap against the centralized
//! reference) and small numeric helpers (means, percentiles, load-imbalance ratios)
//! used by the integration tests and the benchmark harness.

use alvisp2p_textindex::bm25::ScoredDoc;
use alvisp2p_textindex::DocId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision@k of `results` against a set of relevant documents: the fraction of the
/// top-k results that are relevant. Returns 0 when `results` is empty.
pub fn precision_at_k(results: &[ScoredDoc], relevant: &HashSet<DocId>, k: usize) -> f64 {
    let top: Vec<&ScoredDoc> = results.iter().take(k).collect();
    if top.is_empty() {
        return 0.0;
    }
    let hits = top.iter().filter(|r| relevant.contains(&r.doc)).count();
    hits as f64 / top.len() as f64
}

/// Recall@k of `results` against a set of relevant documents: the fraction of relevant
/// documents present in the top-k. Returns 1 when there are no relevant documents.
pub fn recall_at_k(results: &[ScoredDoc], relevant: &HashSet<DocId>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let top: HashSet<DocId> = results.iter().take(k).map(|r| r.doc).collect();
    let hits = relevant.iter().filter(|d| top.contains(d)).count();
    hits as f64 / relevant.len() as f64
}

/// Overlap@k between a system's results and a reference ranking: the fraction of the
/// reference's top-k that also appears in the system's top-k. This is the measure the
/// companion papers use to compare the P2P rankings against the centralized engine.
pub fn overlap_at_k(results: &[ScoredDoc], reference: &[ScoredDoc], k: usize) -> f64 {
    let ref_top: HashSet<DocId> = reference.iter().take(k).map(|r| r.doc).collect();
    if ref_top.is_empty() {
        return 1.0;
    }
    let sys_top: HashSet<DocId> = results.iter().take(k).map(|r| r.doc).collect();
    let hits = ref_top.iter().filter(|d| sys_top.contains(d)).count();
    hits as f64 / ref_top.len() as f64
}

/// The set of documents the reference ranking considers relevant (its top-k) — the
/// usual proxy for relevance judgements when no human assessments exist.
pub fn reference_relevant(reference: &[ScoredDoc], k: usize) -> HashSet<DocId> {
    reference.iter().take(k).map(|r| r.doc).collect()
}

/// Aggregated quality over a query set.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct QualitySummary {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Mean precision@k (reference top-k treated as relevant).
    pub mean_precision: f64,
    /// Mean recall@k.
    pub mean_recall: f64,
    /// Mean overlap@k with the reference ranking.
    pub mean_overlap: f64,
}

/// Accumulates per-query quality measurements into a [`QualitySummary`].
#[derive(Clone, Debug, Default)]
pub struct QualityAccumulator {
    precision: Vec<f64>,
    recall: Vec<f64>,
    overlap: Vec<f64>,
}

impl QualityAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        QualityAccumulator::default()
    }

    /// Adds one query's results, judged against the reference ranking at cutoff `k`.
    pub fn add(&mut self, results: &[ScoredDoc], reference: &[ScoredDoc], k: usize) {
        let relevant = reference_relevant(reference, k);
        self.precision.push(precision_at_k(results, &relevant, k));
        self.recall.push(recall_at_k(results, &relevant, k));
        self.overlap.push(overlap_at_k(results, reference, k));
    }

    /// Number of queries accumulated so far.
    pub fn len(&self) -> usize {
        self.precision.len()
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.precision.is_empty()
    }

    /// The aggregated summary.
    pub fn summary(&self) -> QualitySummary {
        QualitySummary {
            queries: self.precision.len(),
            mean_precision: mean(&self.precision),
            mean_recall: mean(&self.recall),
            mean_overlap: mean(&self.overlap),
        }
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The p-th percentile (0–100) of a slice, using nearest-rank on a sorted copy.
/// Returns 0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Load imbalance of a distribution: `max / mean` (1.0 = perfectly balanced).
/// Returns 0 for an empty slice and `inf`-free results for all-zero loads.
pub fn imbalance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    if m == 0.0 {
        return 1.0;
    }
    values.iter().copied().fold(0.0f64, f64::max) / m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(ids: &[u32]) -> Vec<ScoredDoc> {
        ids.iter()
            .enumerate()
            .map(|(i, id)| ScoredDoc {
                doc: DocId::new(0, *id),
                score: 100.0 - i as f64,
            })
            .collect()
    }

    fn relevant(ids: &[u32]) -> HashSet<DocId> {
        ids.iter().map(|i| DocId::new(0, *i)).collect()
    }

    #[test]
    fn precision_counts_relevant_fraction() {
        let results = docs(&[1, 2, 3, 4]);
        let rel = relevant(&[1, 3, 9]);
        assert!((precision_at_k(&results, &rel, 4) - 0.5).abs() < 1e-9);
        assert!((precision_at_k(&results, &rel, 2) - 0.5).abs() < 1e-9);
        assert_eq!(precision_at_k(&[], &rel, 10), 0.0);
    }

    #[test]
    fn recall_counts_found_fraction() {
        let results = docs(&[1, 2, 3]);
        let rel = relevant(&[1, 3, 9, 10]);
        assert!((recall_at_k(&results, &rel, 10) - 0.5).abs() < 1e-9);
        assert_eq!(recall_at_k(&results, &HashSet::new(), 10), 1.0);
        assert_eq!(recall_at_k(&[], &rel, 10), 0.0);
    }

    #[test]
    fn overlap_compares_against_reference_ranking() {
        let reference = docs(&[1, 2, 3, 4, 5]);
        let identical = docs(&[1, 2, 3, 4, 5]);
        let reordered = docs(&[5, 4, 3, 2, 1]);
        let half = docs(&[1, 2, 9, 10, 11]);
        assert_eq!(overlap_at_k(&identical, &reference, 5), 1.0);
        assert_eq!(overlap_at_k(&reordered, &reference, 5), 1.0);
        assert!((overlap_at_k(&half, &reference, 5) - 0.4).abs() < 1e-9);
        assert_eq!(overlap_at_k(&[], &reference, 5), 0.0);
        assert_eq!(overlap_at_k(&half, &[], 5), 1.0);
    }

    #[test]
    fn accumulator_aggregates_means() {
        let reference = docs(&[1, 2, 3, 4]);
        let mut acc = QualityAccumulator::new();
        assert!(acc.is_empty());
        acc.add(&docs(&[1, 2, 3, 4]), &reference, 4); // perfect
        acc.add(&docs(&[9, 8, 7, 6]), &reference, 4); // disjoint
        let s = acc.summary();
        assert_eq!(s.queries, 2);
        assert!((s.mean_precision - 0.5).abs() < 1e-9);
        assert!((s.mean_overlap - 0.5).abs() < 1e-9);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        let values = [5.0, 1.0, 9.0, 3.0, 7.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 50.0), 5.0);
        assert_eq!(percentile(&values, 100.0), 9.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert!((imbalance(&[2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[0.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
    }
}
