//! The unified error hierarchy of the public API.
//!
//! Every fallible operation on [`crate::network::AlvisNetwork`] and
//! [`crate::network::AlvisNetworkBuilder`] returns [`AlvisError`], which wraps
//! the overlay-level [`DhtError`] and adds the network- and request-level
//! failure modes. Callers match on one type instead of juggling per-layer
//! errors.

use alvisp2p_dht::DhtError;

/// Any error surfaced by the AlvisP2P public API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlvisError {
    /// The structured overlay failed (lookup exhaustion, empty network, bad
    /// origin node).
    Overlay(DhtError),
    /// A request referenced a peer index outside the network.
    NoSuchPeer {
        /// The requested origin peer.
        origin: usize,
        /// Number of peers in the network.
        peers: usize,
    },
    /// A [`crate::request::QueryRequest`] was malformed (e.g. `top_k == 0`).
    InvalidRequest(String),
    /// An [`crate::network::AlvisNetworkBuilder`] configuration was invalid.
    InvalidConfig(String),
}

impl From<DhtError> for AlvisError {
    fn from(e: DhtError) -> Self {
        AlvisError::Overlay(e)
    }
}

impl std::fmt::Display for AlvisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlvisError::Overlay(e) => write!(f, "overlay error: {e}"),
            AlvisError::NoSuchPeer { origin, peers } => {
                write!(f, "no such peer: {origin} (network has {peers} peers)")
            }
            AlvisError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            AlvisError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for AlvisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlvisError::Overlay(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_overlay_errors() {
        let e: AlvisError = DhtError::EmptyNetwork.into();
        assert_eq!(e, AlvisError::Overlay(DhtError::EmptyNetwork));
        assert!(e.to_string().contains("overlay"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_is_informative() {
        let e = AlvisError::NoSuchPeer {
            origin: 9,
            peers: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = AlvisError::InvalidRequest("top_k must be positive".into());
        assert!(e.to_string().contains("top_k"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
