//! The AlvisP2P peer: the co-located layers L3–L5 of one participant.
//!
//! An [`AlvisPeer`] owns the peer's published documents (the "shared directory"), its
//! local inverted index (the role Terrier plays in the original client), and the
//! analyzer both share. Documents never leave the peer — only index entries do — so
//! the peer also enforces per-document access rights when another peer fetches a
//! result, and serves the "second step" query refinement against its local engine.

use crate::sketch::DocumentDigest;
use alvisp2p_textindex::bm25::{Bm25Searcher, ScoredDoc};
use alvisp2p_textindex::{
    AccessDecision, Analyzer, CollectionStats, Credentials, DocId, Document, DocumentStore,
    InvertedIndex,
};
use serde::{Deserialize, Serialize};

/// Metadata kept for documents imported from an external engine via a digest: the
/// document body lives at the external engine, only the index and the pointer are held
/// by the peer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExternalDocument {
    /// The identifier assigned when the digest was imported.
    pub id: DocId,
    /// Title from the digest.
    pub title: String,
    /// URL of the original document at the external engine.
    pub url: String,
}

/// A result served by a peer for a remote fetch request, after access control.
#[derive(Clone, Debug, PartialEq)]
pub enum FetchOutcome {
    /// The full document.
    Full(Document),
    /// Only metadata (title, URL, snippet) — the document is private.
    Metadata {
        /// Document title.
        title: String,
        /// URL at the hosting peer.
        url: String,
        /// A short snippet.
        snippet: String,
    },
    /// Access denied (missing or wrong credentials).
    Denied,
    /// The peer does not host this document.
    NotFound,
}

/// One AlvisP2P participant (layers 3–5).
#[derive(Clone, Debug)]
pub struct AlvisPeer {
    peer_id: u32,
    store: DocumentStore,
    index: InvertedIndex,
    analyzer: Analyzer,
    external: Vec<ExternalDocument>,
    next_external_local: u32,
}

impl AlvisPeer {
    /// Creates a peer with an empty shared directory.
    pub fn new(peer_id: u32) -> Self {
        AlvisPeer::with_analyzer(peer_id, Analyzer::default())
    }

    /// Creates a peer using a custom analysis pipeline (the heterogeneity story: peers
    /// may process their local collections differently).
    pub fn with_analyzer(peer_id: u32, analyzer: Analyzer) -> Self {
        AlvisPeer {
            peer_id,
            store: DocumentStore::new(peer_id),
            index: InvertedIndex::new(analyzer.clone()),
            analyzer,
            external: Vec::new(),
            next_external_local: 1_000_000,
        }
    }

    /// This peer's identifier (also its index in the overlay).
    pub fn peer_id(&self) -> u32 {
        self.peer_id
    }

    /// The peer's analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The peer's local inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The peer's shared-directory document store.
    pub fn documents(&self) -> &DocumentStore {
        &self.store
    }

    /// Documents imported from external engines (searchable but hosted elsewhere).
    pub fn external_documents(&self) -> &[ExternalDocument] {
        &self.external
    }

    /// Number of locally indexed documents (own + imported).
    pub fn indexed_documents(&self) -> usize {
        self.index.doc_count()
    }

    // ------------------------------------------------------------------
    // Publishing
    // ------------------------------------------------------------------

    /// Publishes a plain-text document into the shared directory and indexes it.
    pub fn publish(&mut self, title: impl Into<String>, body: impl Into<String>) -> DocId {
        let id = self.store.publish(title, body);
        let doc = self.store.get(id).expect("just published").clone();
        self.index.index_document(&doc);
        id
    }

    /// Publishes a fully specified document (format, access rights) and indexes it.
    pub fn publish_document(&mut self, doc: Document) -> DocId {
        let id = self.store.publish_document(doc);
        let stored = self.store.get(id).expect("just published").clone();
        self.index.index_document(&stored);
        id
    }

    /// Removes a document from the shared directory and the local index.
    pub fn unpublish(&mut self, id: DocId) -> bool {
        let removed = self.store.remove(id).is_some();
        if removed {
            self.index.remove_document(id);
        }
        removed
    }

    /// Imports a document digest produced by an external search engine: the documents
    /// become searchable through this peer (and, once distributed indexing runs,
    /// through the whole network) while remaining hosted at the external engine.
    pub fn import_digest(&mut self, digest: &DocumentDigest) -> Vec<DocId> {
        let ids = digest.import_into(&mut self.index, self.peer_id, self.next_external_local);
        self.next_external_local += ids.len() as u32;
        for (id, entry) in ids.iter().zip(&digest.documents) {
            self.external.push(ExternalDocument {
                id: *id,
                title: entry.title.clone(),
                url: entry.url.clone(),
            });
        }
        ids
    }

    /// Exports this peer's own collection as a digest (what it would transmit to an
    /// associated external engine or publish for debugging).
    pub fn export_digest(&self) -> DocumentDigest {
        DocumentDigest::from_collection(&self.store, &self.analyzer)
    }

    /// The peer's local collection statistics (published to the ranking layer).
    pub fn collection_stats(&self) -> CollectionStats {
        self.index.collection_stats()
    }

    // ------------------------------------------------------------------
    // Serving
    // ------------------------------------------------------------------

    /// Runs the query against the peer's local search engine (the refinement step of
    /// the two-step retrieval). `query` is raw text; it is analyzed with this peer's
    /// own pipeline.
    pub fn local_search(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let terms = self.analyzer.analyze_query(query);
        Bm25Searcher::new(&self.index).search(&terms, k)
    }

    /// Serves a remote fetch of a document, enforcing its access rights.
    pub fn fetch(&self, id: DocId, credentials: &Credentials) -> FetchOutcome {
        let Some(doc) = self.store.get(id) else {
            return FetchOutcome::NotFound;
        };
        match doc.access.check(credentials) {
            AccessDecision::Granted => FetchOutcome::Full(doc.clone()),
            AccessDecision::MetadataOnly => FetchOutcome::Metadata {
                title: doc.title.clone(),
                url: doc.url.clone(),
                snippet: doc.snippet(160),
            },
            AccessDecision::Denied => FetchOutcome::Denied,
        }
    }

    /// A displayable snippet for a result owned by this peer (empty if unknown).
    pub fn snippet(&self, id: DocId) -> String {
        self.store
            .get(id)
            .map(|d| d.snippet(160))
            .or_else(|| {
                self.external
                    .iter()
                    .find(|e| e.id == id)
                    .map(|e| format!("[external] {}", e.title))
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvisp2p_textindex::AccessRights;

    #[test]
    fn publish_indexes_and_serves_documents() {
        let mut peer = AlvisPeer::new(3);
        let id = peer.publish("P2P retrieval", "peer to peer retrieval of text documents");
        assert_eq!(id.peer, 3);
        assert_eq!(peer.indexed_documents(), 1);
        assert_eq!(peer.documents().len(), 1);
        let results = peer.local_search("retrieval", 10);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].doc, id);
        assert!(!peer.snippet(id).is_empty());
    }

    #[test]
    fn unpublish_removes_from_store_and_index() {
        let mut peer = AlvisPeer::new(0);
        let id = peer.publish("Title", "searchable body text");
        assert!(peer.unpublish(id));
        assert!(!peer.unpublish(id));
        assert_eq!(peer.indexed_documents(), 0);
        assert!(peer.local_search("searchable", 10).is_empty());
    }

    #[test]
    fn access_rights_are_enforced_on_fetch() {
        let mut peer = AlvisPeer::new(1);
        let public = peer.publish("Open", "anyone can read this");
        let restricted_doc = Document::new(DocId::new(1, 99), "Secret", "classified content body")
            .with_access(AccessRights::Restricted {
                username: "alice".into(),
                password: "pw".into(),
            });
        let restricted = peer.publish_document(restricted_doc);
        let private_doc = Document::new(DocId::new(1, 98), "Hidden", "private but searchable text")
            .with_access(AccessRights::Private);
        let private = peer.publish_document(private_doc);

        assert!(matches!(
            peer.fetch(public, &Credentials::anonymous()),
            FetchOutcome::Full(_)
        ));
        assert_eq!(
            peer.fetch(restricted, &Credentials::anonymous()),
            FetchOutcome::Denied
        );
        assert!(matches!(
            peer.fetch(restricted, &Credentials::basic("alice", "pw")),
            FetchOutcome::Full(_)
        ));
        assert!(matches!(
            peer.fetch(private, &Credentials::basic("alice", "pw")),
            FetchOutcome::Metadata { .. }
        ));
        assert_eq!(
            peer.fetch(DocId::new(1, 12345), &Credentials::anonymous()),
            FetchOutcome::NotFound
        );
        // Restricted and private documents are still locally searchable.
        assert!(!peer.local_search("classified", 10).is_empty());
        assert!(!peer.local_search("private", 10).is_empty());
    }

    #[test]
    fn digest_import_makes_external_documents_searchable() {
        // An "external engine" (modelled as another peer) exports its collection.
        let mut library = AlvisPeer::new(7);
        library.publish(
            "Digital library holdings",
            "medieval manuscripts digitized archive",
        );
        library.publish("Catalogue", "rare books catalogue with annotations");
        let digest = library.export_digest();

        // A gateway peer imports the digest.
        let mut gateway = AlvisPeer::new(2);
        gateway.publish("Own doc", "completely unrelated content");
        let ids = gateway.import_digest(&digest);
        assert_eq!(ids.len(), 2);
        assert_eq!(gateway.indexed_documents(), 3);
        assert_eq!(gateway.external_documents().len(), 2);
        // The imported documents are found by local search at the gateway.
        let hits = gateway.local_search("manuscripts archive", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc.peer, 2);
        // But their bodies are not hosted at the gateway.
        assert_eq!(
            gateway.fetch(hits[0].doc, &Credentials::anonymous()),
            FetchOutcome::NotFound
        );
        assert!(gateway.snippet(hits[0].doc).contains("[external]"));
    }

    #[test]
    fn collection_stats_reflect_local_collection() {
        let mut peer = AlvisPeer::new(4);
        peer.publish("One", "alpha beta gamma");
        peer.publish("Two", "alpha delta");
        let stats = peer.collection_stats();
        assert_eq!(stats.doc_count, 2);
        assert_eq!(stats.df("alpha"), 2);
        assert_eq!(stats.df("delta"), 1);
    }

    #[test]
    fn custom_analyzer_is_used_for_indexing_and_search() {
        let plain = Analyzer::plain();
        let mut peer = AlvisPeer::with_analyzer(5, plain);
        peer.publish("Stopwords", "the and of remain searchable here");
        // With the plain analyzer, stopwords are indexed and searchable.
        assert!(!peer.local_search("the", 5).is_empty());
    }
}
