//! Per-key provenance sketches and the Alvis document digest.
//!
//! This module is the querier-side *evidence layer* between planning and
//! probing. For every activated key the responsible peer can publish a
//! [`KeySketch`] — a compact, pinned-wire-format summary of its stored
//! posting list — alongside the ranking statistics of
//! [`crate::ranking::GlobalRankingStats`]. Queriers cache the sketches
//! ([`SketchCache`]) and use them to *prove* a probe useless before spending
//! bytes on it:
//!
//! * the exact header (`len`, `full_df`, `capacity`) plus the rounded-up
//!   maximum stored score prove that a probe under the current score floor
//!   would come back with zero kept entries — the executor then synthesises
//!   the byte-identical response locally and never sends the probe
//!   (see [`crate::exec::QueryStream`]);
//! * the doc-id Bloom/range filters of two *complete* single-term sketches
//!   prove that a multi-term key cannot hold any document, letting the
//!   [`crate::plan::SketchAware`] planner zero its priority; and
//! * the quantized score histogram gives [`crate::plan::GreedyCost`]-style
//!   planners real score mass instead of DF-and-independence estimates.
//!
//! Whether a sketch is worth maintaining at all is itself a cost decision
//! ([`SketchPolicy`]): each sketch kind's upkeep bytes (frame + envelope,
//! charged to [`alvisp2p_netsim::TrafficCategory::Overlay`], never Retrieval)
//! must be justified by its modeled probe-byte savings, mirroring the
//! Reserve-style accounting `GreedyCost` already does for probes. The default
//! [`SketchPolicy::NoSketches`] publishes nothing and leaves the query path
//! byte-identical to a sketch-free build.
//!
//! # Sketch frame layout (pinned by byte-level golden tests)
//!
//! ```text
//! version          u8       == SKETCH_FORMAT_VERSION
//! flags            u8       bit0 = scores, bit1 = membership (others invalid)
//! publish_version  varint   entry version the sketch summarises (staleness)
//! len              varint   stored references
//! full_df          varint   true document frequency at the responsible peer
//! capacity         varint   truncation capacity of the stored list
//! -- scores (flags bit0, only when len > 0) --
//! max_score        f32 LE   rounded *up*: an upper bound on every stored score
//! min_score        f32 LE   rounded *down*: a lower bound
//! n_buckets        varint
//! counts           varint per bucket, equi-width over [min, max]; sums to len
//! -- membership (flags bit1, only when len > 0) --
//! min_peer         varint   doc-id range of the stored references
//! min_local        varint
//! max_peer         varint
//! max_local        varint
//! n_hashes         u8
//! n_bits           varint
//! bloom            ceil(n_bits / 8) raw bytes
//! ```
//!
//! The frame reuses the [`crate::codec`] varint/f32 primitives, so sketch
//! bytes are charged with the same fidelity as posting-list frames.
//!
//! # The Alvis document digest
//!
//! The module also hosts the *document digest* ([`DocumentDigest`]), the
//! paper's interchange format for plugging external local search engines into
//! a peer: an explicit, serialisable representation of a collection's index
//! (documents → terms → positions). It grew out of the former
//! `textindex::digest` module and is the per-*document* counterpart of the
//! per-*key* sketches above — both are published summaries of local index
//! state, which is why they live together.

use crate::codec::{
    get_f32, get_varint, put_f32, put_varint, sanitize_score, varint_len, widen_down, widen_up,
    CodecError,
};
use crate::key::TermKey;
use crate::posting::TruncatedPostingList;
use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
use alvisp2p_textindex::{Analyzer, DocId, Document, DocumentStore, InvertedIndex, TermOccurrence};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Version byte leading every sketch frame.
pub const SKETCH_FORMAT_VERSION: u8 = 1;

/// Number of equi-width histogram buckets in a score sketch.
pub const SKETCH_BUCKETS: usize = 8;

/// Fixed Bloom filter width. A fixed width keeps every membership sketch
/// AND-compatible with every other (the emptiness proof needs bitwise
/// intersection), and 512 bits over at most `truncation_k ≈ 100` stored
/// references keeps the false-positive rate below ~10%.
pub const SKETCH_BLOOM_BITS: u64 = 512;

/// Number of Bloom hash functions.
pub const SKETCH_BLOOM_HASHES: u8 = 3;

/// Frame flag: the score histogram section is present.
const FLAG_SCORES: u8 = 1;
/// Frame flag: the membership (doc-id range + Bloom) section is present.
const FLAG_MEMBERSHIP: u8 = 1 << 1;

// ---------------------------------------------------------------------------
// Sketch kinds
// ---------------------------------------------------------------------------

/// Which optional sections a [`KeySketch`] carries. The header (`len`,
/// `full_df`, `capacity`, publish version) is always present; it alone proves
/// emptiness (`len == 0`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchKinds {
    /// Quantized score histogram + exact min/max score bounds.
    pub scores: bool,
    /// Doc-id range + Bloom filter over the stored references.
    pub membership: bool,
}

impl SketchKinds {
    /// Both kinds.
    pub fn all() -> Self {
        SketchKinds {
            scores: true,
            membership: true,
        }
    }

    /// Neither kind (a header-only sketch).
    pub fn none() -> Self {
        SketchKinds::default()
    }
}

// ---------------------------------------------------------------------------
// KeySketch
// ---------------------------------------------------------------------------

/// The score section of a sketch: rounded-out `[min, max]` bounds plus an
/// equi-width count histogram over that range.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreSketch {
    /// Upper bound on every stored score (`widen_up` of the true `f64` max,
    /// so floor pruning against it is sound).
    pub max: f32,
    /// Lower bound on every stored score.
    pub min: f32,
    /// Per-bucket reference counts; sums to the sketch's `len`.
    pub counts: Vec<u64>,
}

/// The membership section of a sketch: the doc-id range of the stored
/// references and a Bloom filter over them.
#[derive(Clone, Debug, PartialEq)]
pub struct MembershipSketch {
    /// Smallest stored document id (by `(peer, local)`).
    pub min_doc: DocId,
    /// Largest stored document id.
    pub max_doc: DocId,
    /// Number of Bloom hash functions.
    pub hashes: u8,
    /// Bloom width in bits.
    pub bits: u64,
    /// The filter, `ceil(bits / 8)` bytes, bit `i` at byte `i / 8`, mask
    /// `1 << (i % 8)`.
    pub bloom: Vec<u8>,
}

/// A compact, publishable summary of one key's stored posting list.
///
/// Built by the responsible peer at publish time ([`KeySketch::build`]),
/// shipped in the pinned frame format ([`KeySketch::encode`] /
/// [`KeySketch::decode`]) and cached at queriers in a [`SketchCache`]. A
/// sketch is only consulted while its `version` matches the key's current
/// publish version (see
/// [`crate::global_index::GlobalIndex::publish_version`]) — any later
/// publish, activation change or eviction silently retires it.
#[derive(Clone, Debug, PartialEq)]
pub struct KeySketch {
    version: u64,
    len: u64,
    full_df: u64,
    capacity: u64,
    scores: Option<ScoreSketch>,
    membership: Option<MembershipSketch>,
}

/// Total order on document ids by `(peer, local)` — the range-filter order.
fn doc_key(doc: DocId) -> (u32, u32) {
    (doc.peer, doc.local)
}

/// SplitMix64 — the Bloom hash core (deterministic, dependency-free).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The `i`-th Bloom bit position for `doc` (double hashing).
fn bloom_bit(doc: DocId, i: u64, bits: u64) -> u64 {
    let x = (u64::from(doc.peer) << 32) | u64::from(doc.local);
    let h1 = splitmix64(x);
    let h2 = splitmix64(x ^ 0xA5A5_5A5A_DEAD_BEEF) | 1;
    h1.wrapping_add(h2.wrapping_mul(i)) % bits
}

/// Histogram bucket of `score` within `[min, max]` over `n` buckets.
fn bucket_of(score: f64, min: f64, max: f64, n: usize) -> usize {
    if max <= min {
        return 0;
    }
    let unit = ((score - min) / (max - min)).clamp(0.0, 1.0);
    ((unit * n as f64) as usize).min(n - 1)
}

impl KeySketch {
    /// Builds a sketch of `postings` carrying the requested `kinds`.
    /// Kinds are only meaningful for non-empty lists; for an empty list the
    /// header alone already proves everything a sketch can prove, so both
    /// sections are omitted regardless of `kinds`.
    pub fn build(version: u64, postings: &TruncatedPostingList, kinds: SketchKinds) -> Self {
        let refs = postings.refs();
        let len = refs.len() as u64;
        let scores = (kinds.scores && !refs.is_empty()).then(|| {
            let max = widen_up(sanitize_score(
                refs.iter().map(|r| r.score).fold(f64::MIN, f64::max),
            ));
            let min = widen_down(sanitize_score(
                refs.iter().map(|r| r.score).fold(f64::MAX, f64::min),
            ));
            let mut counts = vec![0u64; SKETCH_BUCKETS];
            for r in refs {
                counts[bucket_of(
                    sanitize_score(r.score),
                    f64::from(min),
                    f64::from(max),
                    SKETCH_BUCKETS,
                )] += 1;
            }
            ScoreSketch { max, min, counts }
        });
        let membership = (kinds.membership && !refs.is_empty()).then(|| {
            let min_doc = refs.iter().map(|r| r.doc).min_by_key(|d| doc_key(*d));
            let max_doc = refs.iter().map(|r| r.doc).max_by_key(|d| doc_key(*d));
            let mut bloom = vec![0u8; SKETCH_BLOOM_BITS.div_ceil(8) as usize];
            for r in refs {
                for i in 0..u64::from(SKETCH_BLOOM_HASHES) {
                    let bit = bloom_bit(r.doc, i, SKETCH_BLOOM_BITS);
                    bloom[(bit / 8) as usize] |= 1 << (bit % 8);
                }
            }
            MembershipSketch {
                min_doc: min_doc.expect("non-empty refs"),
                max_doc: max_doc.expect("non-empty refs"),
                hashes: SKETCH_BLOOM_HASHES,
                bits: SKETCH_BLOOM_BITS,
                bloom,
            }
        });
        KeySketch {
            version,
            len,
            full_df: postings.full_df(),
            capacity: postings.capacity() as u64,
            scores,
            membership,
        }
    }

    /// The publish version of the entry the sketch summarises.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of stored references the sketch summarises.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the summarised list holds no references.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True document frequency of the summarised entry.
    pub fn full_df(&self) -> u64 {
        self.full_df
    }

    /// Truncation capacity of the summarised list.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The score section, if carried.
    pub fn scores(&self) -> Option<&ScoreSketch> {
        self.scores.as_ref()
    }

    /// The membership section, if carried.
    pub fn membership(&self) -> Option<&MembershipSketch> {
        self.membership.as_ref()
    }

    /// Whether the summarised list is complete (not capacity-truncated) —
    /// the precondition for the membership emptiness proof: only a complete
    /// list's references witness *all* matching documents.
    pub fn is_complete(&self) -> bool {
        self.full_df == self.len
    }

    /// Proves that a probe under `floor` returns zero kept entries: either
    /// the list is empty, or the rounded-up maximum stored score is strictly
    /// below the floor (the codec keeps entries scoring `>= floor`, so every
    /// stored score being `< floor` elides them all). `floor = None` only
    /// prunes empty lists.
    pub fn prunes_all_below(&self, floor: Option<f64>) -> bool {
        if self.len == 0 {
            return true;
        }
        match (floor, &self.scores) {
            (Some(f), Some(s)) => f64::from(s.max) < f,
            _ => false,
        }
    }

    /// The posting list a pruned probe would have decoded: zero references,
    /// with the floor-elided tail subtracted from `full_df` exactly as
    /// [`crate::codec::decode_list`] reconstructs it. Byte-identical inputs
    /// to the lattice (same truncation status, same domination behaviour) —
    /// the executor records this instead of the wire response.
    pub fn pruned_response(&self) -> TruncatedPostingList {
        TruncatedPostingList::from_wire_parts(
            Vec::new(),
            self.capacity as usize,
            self.full_df.saturating_sub(self.len),
        )
    }

    /// Exact byte length of the response frame a pruned probe would have
    /// carried (an all-elided [`crate::codec::encode_list`] frame), used to
    /// keep budget admission byte-identical with and without pruning.
    pub fn pruned_response_len(&self) -> usize {
        1 + varint_len(self.full_df)
            + varint_len(self.capacity)
            + varint_len(self.len)
            + 1
            + crate::codec::FRAME_TRAILER_LEN
    }

    /// Total score mass of the summarised list (sum of bucket counts times
    /// bucket midpoints) — the planner's replacement for DF-and-independence
    /// benefit estimates. `None` without a score section.
    pub fn score_mass(&self) -> Option<f64> {
        let s = self.scores.as_ref()?;
        let (lo, hi) = (f64::from(s.min), f64::from(s.max));
        if hi <= lo {
            return Some(self.len as f64 * lo);
        }
        let step = (hi - lo) / s.counts.len() as f64;
        Some(
            s.counts
                .iter()
                .enumerate()
                .map(|(i, c)| *c as f64 * (lo + (i as f64 + 0.5) * step))
                .sum(),
        )
    }

    /// Whether the two summarised lists can share a document. `false` is a
    /// *proof* of disjointness (Bloom filters have no false negatives and the
    /// doc-id ranges are exact); `true` only means "not disproven". Callers
    /// proving a multi-term key empty must additionally check
    /// [`KeySketch::is_complete`] on both sides — truncated lists do not
    /// witness all matching documents.
    pub fn may_intersect(&self, other: &KeySketch) -> bool {
        if self.len == 0 || other.len == 0 {
            return false;
        }
        let (Some(a), Some(b)) = (&self.membership, &other.membership) else {
            return true;
        };
        if doc_key(a.max_doc) < doc_key(b.min_doc) || doc_key(b.max_doc) < doc_key(a.min_doc) {
            return false;
        }
        if a.bits == b.bits
            && a.hashes == b.hashes
            && a.bloom.iter().zip(&b.bloom).all(|(x, y)| x & y == 0)
        {
            return false;
        }
        true
    }

    /// Estimates `|A ∩ B|` of the two summarised doc sets from the Bloom
    /// filters (inclusion–exclusion over the standard cardinality estimate of
    /// the OR-ed filter), clamped to `[0, min(len)]`. `None` when either side
    /// lacks a membership section or the filters are not AND-compatible.
    pub fn estimate_intersection(&self, other: &KeySketch) -> Option<f64> {
        if self.len == 0 || other.len == 0 {
            return Some(0.0);
        }
        let (a, b) = (self.membership.as_ref()?, other.membership.as_ref()?);
        if a.bits != b.bits || a.hashes != b.hashes {
            return None;
        }
        let m = a.bits as f64;
        let k = f64::from(a.hashes);
        let union_ones: u32 = a
            .bloom
            .iter()
            .zip(&b.bloom)
            .map(|(x, y)| (x | y).count_ones())
            .sum();
        let est_union = if u64::from(union_ones) >= a.bits {
            (self.len + other.len) as f64
        } else {
            -(m / k) * (1.0 - f64::from(union_ones) / m).ln()
        };
        let est = (self.len + other.len) as f64 - est_union;
        Some(est.clamp(0.0, self.len.min(other.len) as f64))
    }

    /// Encodes the sketch into its pinned wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(SKETCH_FORMAT_VERSION);
        let mut flags = 0u8;
        if self.scores.is_some() {
            flags |= FLAG_SCORES;
        }
        if self.membership.is_some() {
            flags |= FLAG_MEMBERSHIP;
        }
        out.push(flags);
        put_varint(&mut out, self.version);
        put_varint(&mut out, self.len);
        put_varint(&mut out, self.full_df);
        put_varint(&mut out, self.capacity);
        if let Some(s) = &self.scores {
            put_f32(&mut out, s.max);
            put_f32(&mut out, s.min);
            put_varint(&mut out, s.counts.len() as u64);
            for c in &s.counts {
                put_varint(&mut out, *c);
            }
        }
        if let Some(m) = &self.membership {
            put_varint(&mut out, u64::from(m.min_doc.peer));
            put_varint(&mut out, u64::from(m.min_doc.local));
            put_varint(&mut out, u64::from(m.max_doc.peer));
            put_varint(&mut out, u64::from(m.max_doc.local));
            out.push(m.hashes);
            put_varint(&mut out, m.bits);
            out.extend_from_slice(&m.bloom);
        }
        out
    }

    /// Exact length of [`KeySketch::encode`] — pure arithmetic.
    pub fn encoded_len(&self) -> usize {
        let mut len = 2
            + varint_len(self.version)
            + varint_len(self.len)
            + varint_len(self.full_df)
            + varint_len(self.capacity);
        if let Some(s) = &self.scores {
            len += 8 + varint_len(s.counts.len() as u64);
            len += s.counts.iter().map(|c| varint_len(*c)).sum::<usize>();
        }
        if let Some(m) = &self.membership {
            len += varint_len(u64::from(m.min_doc.peer))
                + varint_len(u64::from(m.min_doc.local))
                + varint_len(u64::from(m.max_doc.peer))
                + varint_len(u64::from(m.max_doc.local));
            len += 1 + varint_len(m.bits) + m.bloom.len();
        }
        len
    }

    /// Decodes a sketch frame, validating version, flags, section invariants
    /// and the absence of trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<KeySketch, CodecError> {
        let mut pos = 0usize;
        let version_byte = *buf
            .get(pos)
            .ok_or_else(|| CodecError::new("empty sketch frame"))?;
        pos += 1;
        if version_byte != SKETCH_FORMAT_VERSION {
            return Err(CodecError::new(format!(
                "unknown sketch frame version {version_byte}"
            )));
        }
        let flags = *buf
            .get(pos)
            .ok_or_else(|| CodecError::new("sketch frame missing flags"))?;
        pos += 1;
        if flags & !(FLAG_SCORES | FLAG_MEMBERSHIP) != 0 {
            return Err(CodecError::new(format!("unknown sketch flags {flags:#x}")));
        }
        let version = get_varint(buf, &mut pos)?;
        let len = get_varint(buf, &mut pos)?;
        let full_df = get_varint(buf, &mut pos)?;
        let capacity = get_varint(buf, &mut pos)?;
        if len == 0 && flags != 0 {
            return Err(CodecError::new("sketch sections on an empty list"));
        }
        let scores = if flags & FLAG_SCORES != 0 {
            let max = get_f32(buf, &mut pos)?;
            let min = get_f32(buf, &mut pos)?;
            if !(max.is_finite() && min.is_finite()) || max < min {
                return Err(CodecError::new("invalid sketch score bounds"));
            }
            let n_buckets = get_varint(buf, &mut pos)? as usize;
            if n_buckets == 0 || n_buckets > 1024 {
                return Err(CodecError::new("invalid sketch bucket count"));
            }
            let mut counts = Vec::with_capacity(n_buckets);
            let mut total = 0u64;
            for _ in 0..n_buckets {
                let c = get_varint(buf, &mut pos)?;
                total = total
                    .checked_add(c)
                    .ok_or_else(|| CodecError::new("sketch bucket counts overflow"))?;
                counts.push(c);
            }
            if total != len {
                return Err(CodecError::new("sketch bucket counts do not sum to len"));
            }
            Some(ScoreSketch { max, min, counts })
        } else {
            None
        };
        let membership = if flags & FLAG_MEMBERSHIP != 0 {
            let read_doc = |pos: &mut usize| -> Result<DocId, CodecError> {
                let peer = u32::try_from(get_varint(buf, pos)?)
                    .map_err(|_| CodecError::new("sketch doc peer overflows u32"))?;
                let local = u32::try_from(get_varint(buf, pos)?)
                    .map_err(|_| CodecError::new("sketch doc local overflows u32"))?;
                Ok(DocId::new(peer, local))
            };
            let min_doc = read_doc(&mut pos)?;
            let max_doc = read_doc(&mut pos)?;
            if doc_key(max_doc) < doc_key(min_doc) {
                return Err(CodecError::new("sketch doc range is inverted"));
            }
            let hashes = *buf
                .get(pos)
                .ok_or_else(|| CodecError::new("truncated sketch hash count"))?;
            pos += 1;
            let bits = get_varint(buf, &mut pos)?;
            if hashes == 0 || !(8..=1 << 20).contains(&bits) {
                return Err(CodecError::new("invalid sketch bloom geometry"));
            }
            let n_bytes = bits.div_ceil(8) as usize;
            let end = pos
                .checked_add(n_bytes)
                .filter(|end| *end <= buf.len())
                .ok_or_else(|| CodecError::new("truncated sketch bloom"))?;
            let bloom = buf[pos..end].to_vec();
            pos = end;
            Some(MembershipSketch {
                min_doc,
                max_doc,
                hashes,
                bits,
                bloom,
            })
        } else {
            None
        };
        if pos != buf.len() {
            return Err(CodecError::new("trailing bytes after sketch frame"));
        }
        Ok(KeySketch {
            version,
            len,
            full_df,
            capacity,
            scores,
            membership,
        })
    }
}

// ---------------------------------------------------------------------------
// SketchCache
// ---------------------------------------------------------------------------

/// The querier-side cache of published sketches, keyed by [`TermKey`].
///
/// Freshness is version-gated: [`SketchCache::fresh`] only returns a sketch
/// whose recorded publish version equals the caller-supplied current version
/// of the key, so any republish, (de)activation or eviction after the sketch
/// was built silently disables it — stale evidence is never consulted.
#[derive(Clone, Debug, Default)]
pub struct SketchCache {
    map: HashMap<TermKey, KeySketch>,
}

impl SketchCache {
    /// An empty cache.
    pub fn new() -> Self {
        SketchCache::default()
    }

    /// Inserts (or replaces) the sketch for `key`.
    pub fn insert(&mut self, key: TermKey, sketch: KeySketch) {
        self.map.insert(key, sketch);
    }

    /// The cached sketch for `key`, regardless of freshness.
    pub fn get(&self, key: &TermKey) -> Option<&KeySketch> {
        self.map.get(key)
    }

    /// The cached sketch for `key`, only if it still describes the key's
    /// current publish version.
    pub fn fresh(&self, key: &TermKey, current_version: u64) -> Option<&KeySketch> {
        self.map.get(key).filter(|s| s.version() == current_version)
    }

    /// Number of cached sketches.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every cached sketch.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over the cached `(key, sketch)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&TermKey, &KeySketch)> {
        self.map.iter()
    }
}

// ---------------------------------------------------------------------------
// SketchPolicy — cost-based selection
// ---------------------------------------------------------------------------

/// The cost model behind [`SketchPolicy::CostBased`]: how many probes a key
/// is expected to receive over the sketch's lifetime and with what prior
/// probability each sketch kind turns one of them into savings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchCostModel {
    /// Cold-start prior on expected probes per key while the sketch stays
    /// fresh. Used by the publisher only while the index has never observed a
    /// probe; once any key carries usage statistics, each key's own observed
    /// probe count is projected forward instead (stationary-demand estimate),
    /// so cold keys stop paying for sketches nobody consults.
    pub expected_probes: f64,
    /// Prior probability that a probe for a sketched key is provably below
    /// the querier's running score floor (powers the scores kind).
    pub floor_prune_prior: f64,
    /// Prior probability that the membership section down-ranks a dependent
    /// multi-term probe at the planner (powers the membership kind).
    pub intersect_prior: f64,
}

impl Default for SketchCostModel {
    fn default() -> Self {
        SketchCostModel {
            expected_probes: 4.0,
            floor_prune_prior: 0.25,
            intersect_prior: 0.05,
        }
    }
}

/// A sketch the cost model decided to maintain, with the numbers that
/// justified it.
#[derive(Clone, Debug)]
pub struct PlannedSketch {
    /// The sketch to publish and cache.
    pub sketch: KeySketch,
    /// Its encoded frame (what the wire carries).
    pub frame: Vec<u8>,
    /// Measured upkeep: frame bytes plus the wire envelope, charged to
    /// Overlay at publish time.
    pub upkeep_bytes: usize,
    /// The model's expected probe-byte savings. Always `>= upkeep_bytes` —
    /// the selector refuses to maintain an unprofitable sketch.
    pub modeled_savings: f64,
}

impl SketchCostModel {
    /// Decides which sketch kinds (if any) to maintain for one key, given its
    /// stored postings, the estimated full cost `probe_cost` of one probe for
    /// it (routing + request + response, as
    /// [`crate::global_index::GlobalIndex::estimate_probe_bytes`] bounds it),
    /// and `expected_probes` — the publisher's per-key demand estimate (the
    /// [`SketchCostModel::expected_probes`] prior on a cold index, the key's
    /// observed probe count once usage statistics exist).
    ///
    /// The accounting is Reserve-style and per kind: a kind is selected only
    /// when its expected savings cover its incremental frame bytes, and the
    /// sketch is published only when the summed savings cover the *measured*
    /// total upkeep (frame + envelope). Returns `None` when no sketch pays
    /// for itself.
    pub fn plan(
        &self,
        version: u64,
        postings: &TruncatedPostingList,
        probe_cost: u64,
        expected_probes: f64,
    ) -> Option<PlannedSketch> {
        let probe_cost = probe_cost as f64;
        let mut kinds = SketchKinds::none();
        let base_len = KeySketch::build(version, postings, kinds).encoded_len();
        let mut savings = 0.0;
        if postings.refs().is_empty() {
            // The header alone proves every probe useless.
            savings = expected_probes * probe_cost;
        } else {
            let with_scores = KeySketch::build(
                version,
                postings,
                SketchKinds {
                    scores: true,
                    ..kinds
                },
            )
            .encoded_len();
            let scores_savings = expected_probes * self.floor_prune_prior * probe_cost;
            if scores_savings >= (with_scores - base_len) as f64 {
                kinds.scores = true;
                savings += scores_savings;
            }
            let complete = postings.full_df() == postings.len() as u64;
            if complete {
                let without = KeySketch::build(version, postings, kinds).encoded_len();
                let with_membership = KeySketch::build(
                    version,
                    postings,
                    SketchKinds {
                        membership: true,
                        ..kinds
                    },
                )
                .encoded_len();
                let membership_savings = expected_probes * self.intersect_prior * probe_cost;
                if membership_savings >= (with_membership - without) as f64 {
                    kinds.membership = true;
                    savings += membership_savings;
                }
            }
            if kinds == SketchKinds::none() {
                return None;
            }
        }
        let sketch = KeySketch::build(version, postings, kinds);
        let frame = sketch.encode();
        let upkeep_bytes = frame.len() + ENVELOPE_OVERHEAD;
        if savings < upkeep_bytes as f64 {
            return None;
        }
        Some(PlannedSketch {
            sketch,
            frame,
            upkeep_bytes,
            modeled_savings: savings,
        })
    }
}

/// Whether (and how) a network maintains per-key sketches.
///
/// The default, [`SketchPolicy::NoSketches`], publishes nothing, charges
/// nothing and leaves planning, execution and every byte count identical to a
/// build without the sketch subsystem.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum SketchPolicy {
    /// No sketches are maintained (the pre-sketch behaviour, byte-identical).
    #[default]
    NoSketches,
    /// Sketches are maintained for exactly the keys (and kinds) whose modeled
    /// probe-byte savings cover their measured upkeep bytes.
    CostBased(SketchCostModel),
}

impl SketchPolicy {
    /// The cost-based policy with default model parameters.
    pub fn cost_based() -> Self {
        SketchPolicy::CostBased(SketchCostModel::default())
    }

    /// Whether the policy maintains any sketches at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, SketchPolicy::NoSketches)
    }
}

/// One per-key outcome of the cost-based selector (kept by the build report
/// so experiments can audit the upkeep-vs-savings invariant).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchDecision {
    /// Canonical form of the sketched key.
    pub key: String,
    /// Whether the score section was maintained.
    pub scores: bool,
    /// Whether the membership section was maintained.
    pub membership: bool,
    /// Measured upkeep bytes (frame + envelope) charged to Overlay.
    pub upkeep_bytes: u64,
    /// The model's expected probe-byte savings for this key.
    pub modeled_savings: f64,
}

/// Summary of one sketch-publication pass over the activated keys.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SketchBuildReport {
    /// Keys the selector examined (all activated keys).
    pub considered_keys: usize,
    /// Keys for which a sketch was maintained.
    pub sketched_keys: usize,
    /// Total measured upkeep bytes charged to Overlay.
    pub upkeep_bytes: u64,
    /// Total modeled probe-byte savings of the maintained sketches.
    pub modeled_savings: f64,
    /// The per-key decisions, sorted by key.
    pub decisions: Vec<SketchDecision>,
}

impl SketchBuildReport {
    /// The selector's core invariant: no maintained sketch's measured upkeep
    /// exceeds its modeled savings.
    pub fn upkeep_accounted(&self) -> bool {
        self.decisions
            .iter()
            .all(|d| d.modeled_savings >= d.upkeep_bytes as f64)
    }
}

// ---------------------------------------------------------------------------
// The Alvis document digest
// ---------------------------------------------------------------------------

/// One indexing term of a digest document, with its word positions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestTerm {
    /// The normalized indexing term.
    pub term: String,
    /// Word positions at which the term occurs.
    pub positions: Vec<u32>,
}

/// One document entry of a digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestDocument {
    /// URL of the original document (at the external engine or hosting peer).
    pub url: String,
    /// Human-readable title.
    pub title: String,
    /// Indexing terms with positions.
    pub terms: Vec<DigestTerm>,
}

impl DigestDocument {
    /// Total number of term occurrences in this entry.
    pub fn occurrence_count(&self) -> usize {
        self.terms.iter().map(|t| t.positions.len()).sum()
    }

    /// Flattens the entry into analyzer-style term occurrences.
    pub fn to_occurrences(&self) -> Vec<TermOccurrence> {
        let mut occs: Vec<TermOccurrence> = self
            .terms
            .iter()
            .flat_map(|t| {
                t.positions.iter().map(|p| TermOccurrence {
                    term: t.term.clone(),
                    position: *p,
                })
            })
            .collect();
        occs.sort_by_key(|o| o.position);
        occs
    }
}

/// A digest of a whole document collection.
///
/// A *document digest* is an explicit, serialisable representation of the
/// index of a document collection: the list of document URLs and, for each
/// document, the list of its indexing terms with their positions. It is the
/// interchange format that lets a peer be associated with an arbitrary
/// external local search engine (the paper's example is a digital library
/// running its own sophisticated indexer): the external engine exports a
/// digest, the peer re-imports it into its local index and starts the
/// distributed indexing process.
///
/// The original format is XML; this reproduction uses JSON with the same
/// structure (documents → terms → positions), which keeps the digest
/// human-inspectable.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocumentDigest {
    /// Name of the collection (e.g. the digital library's identifier).
    pub collection: String,
    /// Document entries.
    pub documents: Vec<DigestDocument>,
}

impl DocumentDigest {
    /// Creates an empty digest for a named collection.
    pub fn new(collection: impl Into<String>) -> Self {
        DocumentDigest {
            collection: collection.into(),
            documents: Vec::new(),
        }
    }

    /// Builds a digest from a peer's published documents using the given analyzer
    /// (what a peer would transmit to make its collection globally searchable).
    pub fn from_collection(store: &DocumentStore, analyzer: &Analyzer) -> Self {
        let mut digest = DocumentDigest::new(format!("peer{}", store.peer()));
        for doc in store.iter() {
            digest.documents.push(digest_document(doc, analyzer));
        }
        digest
    }

    /// Number of documents described by the digest.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the digest describes no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Serialises the digest to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a digest from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Imports the digest into a peer's local inverted index, assigning fresh local
    /// document identifiers owned by `peer`. Returns the assigned identifiers in the
    /// order of the digest's documents.
    pub fn import_into(
        &self,
        index: &mut InvertedIndex,
        peer: u32,
        first_local: u32,
    ) -> Vec<DocId> {
        let mut ids = Vec::with_capacity(self.documents.len());
        for (i, entry) in self.documents.iter().enumerate() {
            let id = DocId::new(peer, first_local + i as u32);
            index.index_occurrences(id, &entry.to_occurrences());
            ids.push(id);
        }
        ids
    }
}

fn digest_document(doc: &Document, analyzer: &Analyzer) -> DigestDocument {
    let text = format!("{} {}", doc.title, doc.body);
    let occs = analyzer.analyze(&text);
    let mut terms: Vec<DigestTerm> = Vec::new();
    for occ in occs {
        match terms.iter_mut().find(|t| t.term == occ.term) {
            Some(t) => t.positions.push(occ.position),
            None => terms.push(DigestTerm {
                term: occ.term,
                positions: vec![occ.position],
            }),
        }
    }
    terms.sort_by(|a, b| a.term.cmp(&b.term));
    DigestDocument {
        url: doc.url.clone(),
        title: doc.title.clone(),
        terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::ScoredRef;

    fn list(scores: &[f64], capacity: usize) -> TruncatedPostingList {
        TruncatedPostingList::from_refs(
            scores.iter().enumerate().map(|(i, s)| ScoredRef {
                doc: DocId::new(0, i as u32),
                score: *s,
            }),
            capacity,
        )
    }

    // ------------------------------------------------------------------
    // Sketch frames
    // ------------------------------------------------------------------

    #[test]
    fn golden_header_only_frame() {
        let sketch = KeySketch::build(3, &TruncatedPostingList::new(10), SketchKinds::all());
        let frame = sketch.encode();
        // version, flags (none: the list is empty), publish version, len,
        // full_df, capacity.
        assert_eq!(frame, vec![SKETCH_FORMAT_VERSION, 0, 3, 0, 0, 10]);
        assert_eq!(frame.len(), sketch.encoded_len());
        assert_eq!(KeySketch::decode(&frame).unwrap(), sketch);
    }

    #[test]
    fn golden_scores_frame() {
        let sketch = KeySketch::build(
            1,
            &list(&[2.0, 1.0], 10),
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        let frame = sketch.encode();
        // 2.0 and 1.0 are exactly f32-representable, so the widened bounds
        // are their plain LE encodings; the two scores land in the top and
        // bottom of the 8 equi-width buckets.
        let expected = [
            vec![SKETCH_FORMAT_VERSION, FLAG_SCORES, 1, 2, 2, 10],
            2.0f32.to_le_bytes().to_vec(),
            1.0f32.to_le_bytes().to_vec(),
            vec![8, 1, 0, 0, 0, 0, 0, 0, 1],
        ]
        .concat();
        assert_eq!(frame, expected);
        assert_eq!(frame.len(), sketch.encoded_len());
        assert_eq!(KeySketch::decode(&frame).unwrap(), sketch);
    }

    #[test]
    fn membership_frame_round_trips_with_fixed_geometry() {
        let sketch = KeySketch::build(7, &list(&[5.0, 4.0, 3.0], 10), SketchKinds::all());
        let m = sketch.membership().unwrap();
        assert_eq!(m.bits, SKETCH_BLOOM_BITS);
        assert_eq!(m.hashes, SKETCH_BLOOM_HASHES);
        assert_eq!(m.bloom.len(), SKETCH_BLOOM_BITS.div_ceil(8) as usize);
        assert_eq!(m.min_doc, DocId::new(0, 0));
        assert_eq!(m.max_doc, DocId::new(0, 2));
        let frame = sketch.encode();
        assert_eq!(frame.len(), sketch.encoded_len());
        assert_eq!(KeySketch::decode(&frame).unwrap(), sketch);
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let good = KeySketch::build(1, &list(&[2.0, 1.0], 10), SketchKinds::all()).encode();
        // Empty / truncated.
        assert!(KeySketch::decode(&[]).is_err());
        assert!(KeySketch::decode(&good[..good.len() - 1]).is_err());
        // Bad version byte.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(KeySketch::decode(&bad).is_err());
        // Unknown flag bits.
        let mut bad = good.clone();
        bad[1] |= 0x80;
        assert!(KeySketch::decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(KeySketch::decode(&bad).is_err());
        // Sections on an empty list.
        assert!(KeySketch::decode(&[SKETCH_FORMAT_VERSION, FLAG_SCORES, 0, 0, 0, 5]).is_err());
        // Bucket counts that do not sum to len.
        let mut bad = KeySketch::build(
            1,
            &list(&[2.0, 1.0], 10),
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        bad.scores.as_mut().unwrap().counts[0] += 1;
        assert!(KeySketch::decode(&bad.encode()).is_err());
    }

    #[test]
    fn floor_pruning_matches_the_codec_exactly() {
        let postings = list(&[3.0, 2.5, 1.0], 10);
        let sketch = KeySketch::build(
            0,
            &postings,
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        // Above the max: provably all-elided; the synthesised response equals
        // what encode→decode under the same floor produces.
        assert!(sketch.prunes_all_below(Some(3.5)));
        let wire =
            crate::codec::decode_list(&crate::codec::encode_list(&postings, Some(3.5))).unwrap();
        assert_eq!(sketch.pruned_response(), wire);
        assert_eq!(
            sketch.pruned_response_len(),
            crate::codec::encode_list(&postings, Some(3.5)).len()
        );
        // At or below the max: not provable (the codec keeps `>= floor`).
        assert!(!sketch.prunes_all_below(Some(3.0)));
        assert!(!sketch.prunes_all_below(Some(1.0)));
        assert!(!sketch.prunes_all_below(None));
        // An empty list prunes under any floor, including none.
        let empty = KeySketch::build(0, &TruncatedPostingList::new(4), SketchKinds::none());
        assert!(empty.prunes_all_below(None));
        assert_eq!(
            empty.pruned_response(),
            crate::codec::decode_list(&crate::codec::encode_list(
                &TruncatedPostingList::new(4),
                None
            ))
            .unwrap()
        );
    }

    #[test]
    fn truncated_lists_synthesise_truncated_responses() {
        // 5 stored of 9 matching: the synthesised pruned response must stay
        // truncated, exactly like the wire's all-elided frame.
        let mut postings = TruncatedPostingList::new(5);
        for i in 0..9u32 {
            postings.insert(ScoredRef {
                doc: DocId::new(0, i),
                score: f64::from(9 - i),
            });
        }
        assert!(postings.is_truncated());
        let sketch = KeySketch::build(
            0,
            &postings,
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        assert!(!sketch.is_complete());
        let synth = sketch.pruned_response();
        let wire =
            crate::codec::decode_list(&crate::codec::encode_list(&postings, Some(100.0))).unwrap();
        assert_eq!(synth, wire);
        assert!(synth.is_truncated());
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let a = list(&[5.0, 4.0, 3.0, 2.0], 10);
        let sketch = KeySketch::build(0, &a, SketchKinds::all());
        // Every stored doc sets all its bits: a singleton sketch of any
        // stored doc must be judged as possibly intersecting.
        for r in a.refs() {
            let single = TruncatedPostingList::from_refs(
                [ScoredRef {
                    doc: r.doc,
                    score: r.score,
                }],
                10,
            );
            let s = KeySketch::build(0, &single, SketchKinds::all());
            assert!(sketch.may_intersect(&s));
            assert!(s.may_intersect(&sketch));
        }
    }

    #[test]
    fn disjoint_doc_sets_are_proven_disjoint() {
        let a = TruncatedPostingList::from_refs(
            (0..4u32).map(|i| ScoredRef {
                doc: DocId::new(1, i),
                score: 1.0,
            }),
            10,
        );
        let b = TruncatedPostingList::from_refs(
            (0..4u32).map(|i| ScoredRef {
                doc: DocId::new(2, i),
                score: 1.0,
            }),
            10,
        );
        let sa = KeySketch::build(0, &a, SketchKinds::all());
        let sb = KeySketch::build(0, &b, SketchKinds::all());
        // Disjoint ranges (peer 1 vs peer 2) prove it outright.
        assert!(!sa.may_intersect(&sb));
        // An empty side proves it too.
        let empty = KeySketch::build(0, &TruncatedPostingList::new(4), SketchKinds::all());
        assert!(!sa.may_intersect(&empty));
        // Without membership sections nothing is provable.
        let blind = KeySketch::build(
            0,
            &b,
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        assert!(sa.may_intersect(&blind));
    }

    #[test]
    fn intersection_estimate_tracks_real_overlap() {
        let a = TruncatedPostingList::from_refs(
            (0..40u32).map(|i| ScoredRef {
                doc: DocId::new(0, i),
                score: 1.0,
            }),
            100,
        );
        let b = TruncatedPostingList::from_refs(
            (20..60u32).map(|i| ScoredRef {
                doc: DocId::new(0, i),
                score: 1.0,
            }),
            100,
        );
        let sa = KeySketch::build(0, &a, SketchKinds::all());
        let sb = KeySketch::build(0, &b, SketchKinds::all());
        let est = sa.estimate_intersection(&sb).unwrap();
        // True overlap is 20 of 40; the Bloom estimate is approximate but
        // must land in the right ballpark and inside the hard bounds.
        assert!(est > 5.0 && est <= 40.0, "estimate {est}");
        // Identical sets estimate close to their full size.
        let self_est = sa.estimate_intersection(&sa).unwrap();
        assert!(self_est > 30.0, "self estimate {self_est}");
    }

    #[test]
    fn score_mass_reflects_the_histogram() {
        let postings = list(&[4.0, 4.0, 1.0], 10);
        let sketch = KeySketch::build(
            0,
            &postings,
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        let mass = sketch.score_mass().unwrap();
        let true_mass = 9.0;
        // Bucket midpoints put each score within half a bucket width.
        assert!((mass - true_mass).abs() < 1.0, "mass {mass}");
        // Degenerate range (all scores equal).
        let flat = KeySketch::build(
            0,
            &list(&[2.0, 2.0], 10),
            SketchKinds {
                scores: true,
                membership: false,
            },
        );
        let flat_mass = flat.score_mass().unwrap();
        assert!((flat_mass - 4.0).abs() < 0.1, "flat mass {flat_mass}");
        assert!(KeySketch::build(0, &postings, SketchKinds::none())
            .score_mass()
            .is_none());
    }

    // ------------------------------------------------------------------
    // Cache
    // ------------------------------------------------------------------

    #[test]
    fn cache_is_version_gated() {
        let mut cache = SketchCache::new();
        let key = TermKey::new(["sketch", "cach"]);
        let sketch = KeySketch::build(5, &list(&[1.0], 10), SketchKinds::all());
        cache.insert(key.clone(), sketch);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_some());
        assert!(cache.fresh(&key, 5).is_some());
        assert!(cache.fresh(&key, 6).is_none(), "stale sketches are ignored");
        assert!(cache.fresh(&TermKey::single("other"), 5).is_none());
        cache.clear();
        assert!(cache.is_empty());
    }

    // ------------------------------------------------------------------
    // Cost-based selection
    // ------------------------------------------------------------------

    #[test]
    fn selector_never_maintains_an_unprofitable_sketch() {
        let model = SketchCostModel::default();
        // A worthwhile key: decent probe cost.
        let planned = model
            .plan(1, &list(&[3.0, 2.0, 1.0], 10), 2_000, model.expected_probes)
            .unwrap();
        assert!(planned.modeled_savings >= planned.upkeep_bytes as f64);
        assert_eq!(
            planned.upkeep_bytes,
            planned.frame.len() + ENVELOPE_OVERHEAD
        );
        assert!(planned.sketch.scores().is_some());
        // A probe too cheap to ever pay for a sketch.
        assert!(model
            .plan(1, &list(&[3.0, 2.0, 1.0], 10), 10, model.expected_probes)
            .is_none());
    }

    #[test]
    fn selector_prefers_header_only_for_empty_lists() {
        let model = SketchCostModel::default();
        let planned = model
            .plan(
                2,
                &TruncatedPostingList::new(10),
                500,
                model.expected_probes,
            )
            .unwrap();
        assert!(planned.sketch.is_empty());
        assert!(planned.sketch.scores().is_none());
        assert!(planned.sketch.membership().is_none());
        assert!(planned.modeled_savings >= planned.upkeep_bytes as f64);
    }

    #[test]
    fn selector_skips_membership_for_truncated_lists() {
        let model = SketchCostModel {
            expected_probes: 100.0,
            floor_prune_prior: 0.5,
            intersect_prior: 0.5,
        };
        let mut truncated = TruncatedPostingList::new(3);
        for i in 0..6u32 {
            truncated.insert(ScoredRef {
                doc: DocId::new(0, i),
                score: f64::from(6 - i),
            });
        }
        let planned = model
            .plan(1, &truncated, 5_000, model.expected_probes)
            .unwrap();
        assert!(planned.sketch.scores().is_some());
        assert!(
            planned.sketch.membership().is_none(),
            "truncated lists cannot witness all matching documents"
        );
        // A complete list with the same model does get a membership section.
        let complete = list(&[6.0, 5.0, 4.0], 10);
        let planned = model
            .plan(1, &complete, 5_000, model.expected_probes)
            .unwrap();
        assert!(planned.sketch.membership().is_some());
    }

    #[test]
    fn build_report_audits_the_invariant() {
        let mut report = SketchBuildReport::default();
        report.decisions.push(SketchDecision {
            key: "a".into(),
            scores: true,
            membership: false,
            upkeep_bytes: 50,
            modeled_savings: 200.0,
        });
        assert!(report.upkeep_accounted());
        report.decisions.push(SketchDecision {
            key: "b".into(),
            scores: true,
            membership: false,
            upkeep_bytes: 300,
            modeled_savings: 200.0,
        });
        assert!(!report.upkeep_accounted());
    }

    #[test]
    fn no_sketches_is_the_default_policy() {
        assert_eq!(SketchPolicy::default(), SketchPolicy::NoSketches);
        assert!(!SketchPolicy::default().enabled());
        assert!(SketchPolicy::cost_based().enabled());
    }

    // ------------------------------------------------------------------
    // The document digest (moved from textindex::digest)
    // ------------------------------------------------------------------

    fn sample_store() -> DocumentStore {
        let mut store = DocumentStore::new(2);
        store.publish("P2P Retrieval", "peer to peer retrieval of text documents");
        store.publish("Ranking", "bm25 ranking of retrieved documents");
        store
    }

    #[test]
    fn digest_from_collection_covers_all_documents() {
        let store = sample_store();
        let digest = DocumentDigest::from_collection(&store, &Analyzer::default());
        assert_eq!(digest.len(), 2);
        assert_eq!(digest.collection, "peer2");
        assert!(!digest.is_empty());
        let first = &digest.documents[0];
        assert!(first.terms.iter().any(|t| t.term == "retriev"));
        assert!(first.occurrence_count() >= 4);
    }

    #[test]
    fn json_round_trip_preserves_the_digest() {
        let store = sample_store();
        let digest = DocumentDigest::from_collection(&store, &Analyzer::default());
        let json = digest.to_json().unwrap();
        let back = DocumentDigest::from_json(&json).unwrap();
        assert_eq!(digest, back);
        assert!(json.contains("retriev"));
    }

    #[test]
    fn import_reproduces_the_original_index() {
        let store = sample_store();
        let analyzer = Analyzer::default();
        // Index built directly from the documents.
        let mut direct = InvertedIndex::default();
        for (i, doc) in store.iter().enumerate() {
            direct.index_text(
                DocId::new(9, i as u32),
                &format!("{} {}", doc.title, doc.body),
            );
        }
        // Index built by exporting and re-importing a digest (what an external engine
        // would do).
        let digest = DocumentDigest::from_collection(&store, &analyzer);
        let mut imported = InvertedIndex::default();
        let ids = digest.import_into(&mut imported, 9, 0);
        assert_eq!(ids.len(), 2);
        assert_eq!(imported.doc_count(), direct.doc_count());
        for term in ["retriev", "peer", "bm25", "rank"] {
            assert_eq!(imported.df(term), direct.df(term), "df mismatch for {term}");
        }
        assert_eq!(imported.avg_doc_len(), direct.avg_doc_len());
    }

    #[test]
    fn digest_occurrences_are_position_sorted() {
        let entry = DigestDocument {
            url: "u".into(),
            title: "t".into(),
            terms: vec![
                DigestTerm {
                    term: "b".into(),
                    positions: vec![3, 1],
                },
                DigestTerm {
                    term: "a".into(),
                    positions: vec![0, 2],
                },
            ],
        };
        let occs = entry.to_occurrences();
        let positions: Vec<u32> = occs.iter().map(|o| o.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_digest_round_trips() {
        let digest = DocumentDigest::new("empty");
        let json = digest.to_json().unwrap();
        let back = DocumentDigest::from_json(&json).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.collection, "empty");
    }
}
