//! # alvisp2p-core
//!
//! The core of the AlvisP2P reproduction: the paper's primary contribution — scalable
//! full-text retrieval in a structured P2P network through **carefully chosen indexing
//! term combinations** with **truncated posting lists** — implemented as layers 3 and 4
//! of the architecture on top of the `alvisp2p-dht` overlay and the
//! `alvisp2p-textindex` local search engine.
//!
//! * [`key`] — term-combination keys and their subset lattice;
//! * [`posting`] — truncated posting lists (bounded top-k document references);
//! * [`codec`] — the wire codec for posting lists and key frames
//!   (delta-varint blocks, `u16`-quantized scores, per-block max-score headers
//!   and skip offsets); `WireSize` for retrieval frames is the exact length of
//!   what this codec produces;
//! * [`global_index`] — the distributed key → posting-list index with per-key usage
//!   statistics, scattered over the overlay;
//! * [`strategy`] — the pluggable [`Strategy`] trait with the paper's three
//!   policies ([`SingleTermFull`], [`Hdk`], [`Qdi`]) as built-in implementations;
//! * [`hdk`] — Highly Discriminative Keys: document-frequency-driven key expansion;
//! * [`qdi`] — Query-Driven Indexing: popularity-driven on-demand key activation and
//!   eviction;
//! * [`lattice`] — the query-lattice retrieval algorithm of Figure 1;
//! * [`plan`] — budget-aware query planning: the [`Planner`] seam producing
//!   ordered, cost-annotated [`QueryPlan`]s over the term lattice (built-ins:
//!   the PR 1-equivalent [`BestEffort`] and the cost-based [`GreedyCost`]);
//! * [`exec`] — plan execution with streaming results: [`QueryExecutor`],
//!   pull-style [`QueryStream`]s and push-style [`ExecutionObserver`]s with
//!   per-probe events and early termination;
//! * [`fault`] — the deterministic fault-injection plane ([`FaultPlane`]:
//!   seeded per-probe message loss, crashed/stalled peers, slow replies) and
//!   the [`RetryPolicy`] (bounded retries, backoff, replica failover) that
//!   lets queries degrade gracefully instead of aborting;
//! * [`ranking`] — the distributed BM25 ranking layer (global statistics, result
//!   merging);
//! * [`peer`] — an AlvisP2P participant: shared documents, local engine, access
//!   control, digests;
//! * [`network`] — the full system: assemble a network with
//!   [`AlvisNetworkBuilder`], distribute a corpus, build the index with any
//!   strategy, and run [`QueryRequest`]s — in one shot via `execute`, or as an
//!   explicit plan → run pipeline — with full traffic accounting;
//! * [`request`] — the [`QueryRequest`]/[`QueryResponse`] pair;
//! * [`sketch`] — per-key provenance sketches ([`KeySketch`]: doc-id
//!   Bloom/range filters and quantized score histograms) with cost-based
//!   selection ([`SketchPolicy`]), plus the Alvis document digest
//!   ([`DocumentDigest`]) for plugging external local engines into a peer;
//! * [`error`] — the unified [`AlvisError`] hierarchy;
//! * [`baseline`] — the centralized reference engine;
//! * [`stats`] — retrieval-quality metrics used by the experiments.
//!
//! ```
//! use alvisp2p_core::network::AlvisNetwork;
//! use alvisp2p_core::request::QueryRequest;
//! use alvisp2p_core::strategy::Hdk;
//! use alvisp2p_core::hdk::HdkConfig;
//! use alvisp2p_textindex::demo_corpus;
//!
//! // A 4-peer network indexing the demo corpus with Highly Discriminative Keys.
//! let mut net = AlvisNetwork::builder()
//!     .peers(4)
//!     .strategy(Hdk::new(HdkConfig { df_max: 2, ..Default::default() }))
//!     .documents(demo_corpus())
//!     .build_indexed()
//!     .unwrap();
//! let outcome = net.execute(&QueryRequest::new("peer retrieval")).unwrap();
//! assert!(!outcome.results.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Keys are cheap to copy now, but a clone that could be a borrow is still a
// smell on the hot paths this crate owns; CI runs clippy with `-D warnings`.
#![warn(clippy::redundant_clone)]

pub mod baseline;
pub mod codec;
pub mod error;
pub mod exec;
pub mod fault;
pub mod global_index;
pub mod hdk;
pub mod key;
pub mod lattice;
pub mod network;
pub mod peer;
pub mod plan;
pub mod posting;
pub mod qdi;
pub mod ranking;
pub mod request;
pub mod sketch;
pub mod stats;
pub mod strategy;

pub use baseline::CentralizedEngine;
pub use codec::{
    decode_list, decode_list_above, encode_list, max_encoded_list_len, quantization_step,
    CodecError,
};
pub use error::AlvisError;
pub use exec::{
    ExecutionControl, ExecutionObserver, ProbeEvent, QueryExecutor, QueryStream, StableTopK,
};
pub use fault::{Completeness, FailureCause, FaultConfig, FaultPlane, ProbeOutcome, RetryPolicy};
pub use global_index::{GlobalIndex, KeyIndexEntry, KeyUsageStats, ProbeResult};
pub use hdk::{HdkConfig, HdkLevelReport};
pub use key::TermKey;
pub use lattice::{explore_lattice, LatticeConfig, LatticeResult, LatticeTrace, NodeOutcome};
pub use network::{
    AlvisNetwork, AlvisNetworkBuilder, IndexBuildReport, NetworkConfig, RefinedResult,
};
pub use peer::{AlvisPeer, FetchOutcome};
pub use plan::{
    BestEffort, BudgetPolicy, GreedyCost, PlanCtx, PlanCursor, PlanDecision, PlanHints, PlanNode,
    Planner, QueryPlan, ReplicaAware, SketchAware,
};
pub use posting::{ScoredRef, TruncatedPostingList};
pub use qdi::{ActivationDecision, QdiConfig, QdiReport};
pub use ranking::{merge_retrieved, score_local_postings, GlobalRankingStats};
pub use request::{QueryRequest, QueryResponse, ThresholdMode};
pub use sketch::{
    DigestDocument, DigestTerm, DocumentDigest, KeySketch, SketchBuildReport, SketchCache,
    SketchCostModel, SketchDecision, SketchKinds, SketchPolicy,
};
pub use stats::{overlap_at_k, precision_at_k, recall_at_k, QualityAccumulator, QualitySummary};
pub use strategy::{Hdk, IndexerCtx, Qdi, QueryCtx, SingleTermFull, Strategy};
