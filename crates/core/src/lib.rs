//! # alvisp2p-core
//!
//! The core of the AlvisP2P reproduction: the paper's primary contribution — scalable
//! full-text retrieval in a structured P2P network through **carefully chosen indexing
//! term combinations** with **truncated posting lists** — implemented as layers 3 and 4
//! of the architecture on top of the `alvisp2p-dht` overlay and the
//! `alvisp2p-textindex` local search engine.
//!
//! * [`key`] — term-combination keys and their subset lattice;
//! * [`posting`] — truncated posting lists (bounded top-k document references);
//! * [`global_index`] — the distributed key → posting-list index with per-key usage
//!   statistics, scattered over the overlay;
//! * [`hdk`] — Highly Discriminative Keys: document-frequency-driven key expansion;
//! * [`qdi`] — Query-Driven Indexing: popularity-driven on-demand key activation and
//!   eviction;
//! * [`lattice`] — the query-lattice retrieval algorithm of Figure 1;
//! * [`ranking`] — the distributed BM25 ranking layer (global statistics, result
//!   merging);
//! * [`peer`] — an AlvisP2P participant: shared documents, local engine, access
//!   control, digests;
//! * [`network`] — the full system: build a network, distribute a corpus, build the
//!   index with any strategy, run queries with full traffic accounting;
//! * [`baseline`] — the centralized reference engine;
//! * [`stats`] — retrieval-quality metrics used by the experiments.
//!
//! ```
//! use alvisp2p_core::network::{AlvisNetwork, IndexingStrategy, NetworkConfig};
//! use alvisp2p_core::hdk::HdkConfig;
//! use alvisp2p_textindex::demo_corpus;
//!
//! // A 4-peer network indexing the demo corpus with Highly Discriminative Keys.
//! let mut net = AlvisNetwork::new(NetworkConfig {
//!     peers: 4,
//!     strategy: IndexingStrategy::Hdk(HdkConfig { df_max: 2, ..Default::default() }),
//!     ..Default::default()
//! });
//! net.distribute_documents(demo_corpus());
//! net.build_index();
//! let outcome = net.query(0, "peer retrieval", 10).unwrap();
//! assert!(!outcome.results.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod global_index;
pub mod hdk;
pub mod key;
pub mod lattice;
pub mod network;
pub mod peer;
pub mod posting;
pub mod qdi;
pub mod ranking;
pub mod stats;

pub use baseline::CentralizedEngine;
pub use global_index::{GlobalIndex, KeyIndexEntry, KeyUsageStats, ProbeResult};
pub use hdk::{HdkConfig, HdkLevelReport};
pub use key::TermKey;
pub use lattice::{explore_lattice, LatticeConfig, LatticeResult, LatticeTrace, NodeOutcome};
pub use network::{
    AlvisNetwork, IndexBuildReport, IndexingStrategy, NetworkConfig, NetworkError, QueryOutcome,
    RefinedResult,
};
pub use peer::{AlvisPeer, FetchOutcome};
pub use posting::{ScoredRef, TruncatedPostingList};
pub use qdi::{ActivationDecision, QdiConfig, QdiReport};
pub use ranking::{merge_retrieved, score_local_postings, GlobalRankingStats};
pub use stats::{overlap_at_k, precision_at_k, recall_at_k, QualityAccumulator, QualitySummary};
