//! Highly Discriminative Keys (HDK).
//!
//! The HDK indexing strategy (Podnar et al., ICDE 2007) populates the distributed
//! index with term combinations chosen from observed **document frequencies**:
//!
//! * every single term is indexed, but the posting list a responsible peer stores and
//!   ships is truncated to the top-ranked references;
//! * a key whose global posting list exceeds `df_max` is *frequent* (not
//!   discriminative). Frequent keys are **expanded**: new keys with one more term are
//!   generated from term combinations that actually co-occur within a proximity window
//!   in some document, up to a maximum key length;
//! * keys with document frequency at or below `df_max` are *highly discriminative*:
//!   their complete posting list fits the size bound, so retrieval through them is both
//!   cheap and exact.
//!
//! This module contains the pure per-document candidate-generation logic and the
//! proximity-window machinery; the cross-peer orchestration (aggregate global document
//! frequencies, iterate levels) lives in [`crate::network`].

use crate::key::TermKey;
use alvisp2p_textindex::TermId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the HDK indexing strategy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HdkConfig {
    /// Document-frequency threshold: keys with a larger global df are "frequent" and
    /// trigger expansion.
    pub df_max: usize,
    /// Posting lists stored in / shipped through the network are truncated to this
    /// many top-ranked references.
    pub truncation_k: usize,
    /// Maximum number of terms per key (the paper and companion papers use 2–3).
    pub max_key_len: usize,
    /// Terms of a multi-term key must co-occur within a window of this many word
    /// positions in at least one document for the key to be generated there.
    pub proximity_window: u32,
    /// Ablation switch: when `false`, the proximity filter is skipped and every
    /// combination of frequent terms present in a document becomes a candidate
    /// (dramatically increasing the number of keys — experiment E3 quantifies this).
    pub use_proximity_filter: bool,
}

impl Default for HdkConfig {
    fn default() -> Self {
        HdkConfig {
            df_max: 200,
            truncation_k: 200,
            max_key_len: 3,
            proximity_window: 20,
            use_proximity_filter: true,
        }
    }
}

/// Summary of one level of HDK index construction (reported by experiment E3).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct HdkLevelReport {
    /// Key length at this level (1 = single terms).
    pub level: usize,
    /// Number of candidate keys generated at this level.
    pub candidates: usize,
    /// Number of keys whose global df stayed at or below `df_max` (true HDKs).
    pub discriminative: usize,
    /// Number of keys that remained frequent (and were truncated / expanded further).
    pub frequent: usize,
}

/// The smallest window (in word positions) that covers at least one occurrence of
/// every term, given each term's sorted position list. Returns `None` if any list is
/// empty.
///
/// This is the classic k-way "minimum covering window" sweep; `k` is at most the key
/// length (≤ 3–4), and position lists are short, so the simple O(total · k) scan is
/// plenty fast.
pub fn min_cover_window(position_lists: &[&[u32]]) -> Option<u32> {
    if position_lists.is_empty() || position_lists.iter().any(|l| l.is_empty()) {
        return None;
    }
    if position_lists.len() == 1 {
        return Some(0);
    }
    let mut cursors = vec![0usize; position_lists.len()];
    let mut best: Option<u32> = None;
    loop {
        let mut min_val = u32::MAX;
        let mut max_val = 0u32;
        let mut min_list = 0usize;
        for (i, list) in position_lists.iter().enumerate() {
            let v = list[cursors[i]];
            if v < min_val {
                min_val = v;
                min_list = i;
            }
            if v > max_val {
                max_val = v;
            }
        }
        let spread = max_val - min_val;
        best = Some(best.map_or(spread, |b| b.min(spread)));
        // Advance the cursor of the list holding the minimum; when it is exhausted the
        // window cannot shrink further.
        cursors[min_list] += 1;
        if cursors[min_list] >= position_lists[min_list].len() {
            return best;
        }
    }
}

/// Whether all terms of a candidate key co-occur within `window` positions in the
/// document described by `doc_terms` (an id-sorted `(term, positions)` view, as
/// produced by [`alvisp2p_textindex::InvertedIndex::doc_term_positions`]).
pub fn cooccurs_within_window(
    doc_terms: &[(TermId, Vec<u32>)],
    key: &TermKey,
    window: u32,
) -> bool {
    let mut lists: Vec<&[u32]> = Vec::with_capacity(key.len());
    for term in key.term_ids() {
        match doc_terms.binary_search_by_key(term, |(t, _)| *t) {
            Ok(i) => lists.push(&doc_terms[i].1),
            Err(_) => return false,
        }
    }
    match min_cover_window(&lists) {
        Some(spread) => spread <= window,
        None => false,
    }
}

/// Generates the level-`target_len` candidate keys contributed by a single document.
///
/// `doc_terms` is the document's sorted `(term, positions)` view (see
/// [`alvisp2p_textindex::InvertedIndex::doc_term_positions`]); `frequent_parents` is
/// the set of level-`target_len - 1` keys whose **global** posting list exceeded
/// `df_max` and must therefore be expanded; `frequent_terms` is the set of single
/// terms that are globally frequent (expansion only combines frequent terms — a rare
/// term is already discriminative on its own, so combining it would only create
/// redundant keys).
pub fn generate_doc_candidates(
    doc_terms: &[(TermId, Vec<u32>)],
    frequent_parents: &BTreeSet<TermKey>,
    frequent_terms: &BTreeSet<TermId>,
    target_len: usize,
    config: &HdkConfig,
) -> Vec<TermKey> {
    if target_len < 2 || target_len > config.max_key_len {
        return Vec::new();
    }
    // Terms of this document that are globally frequent.
    let doc_frequent: Vec<TermId> = doc_terms
        .iter()
        .map(|(t, _)| *t)
        .filter(|t| frequent_terms.contains(t))
        .collect();
    if doc_frequent.len() < target_len {
        return Vec::new();
    }

    let mut out: BTreeSet<TermKey> = BTreeSet::new();
    for parent in frequent_parents {
        if parent.len() + 1 != target_len {
            continue;
        }
        // The parent's terms must all occur in this document.
        if !parent
            .term_ids()
            .iter()
            .all(|t| doc_terms.binary_search_by_key(t, |(dt, _)| *dt).is_ok())
        {
            continue;
        }
        for term in &doc_frequent {
            let Some(candidate) = parent.expand_id(*term) else {
                continue;
            };
            if out.contains(&candidate) {
                continue;
            }
            if !config.use_proximity_filter
                || cooccurs_within_window(doc_terms, &candidate, config.proximity_window)
            {
                out.insert(candidate);
            }
        }
    }
    out.into_iter().collect()
}

/// Convenience: the level-1 "parents" (single-term keys) of a set of frequent terms.
pub fn single_term_keys(frequent_terms: &BTreeSet<TermId>) -> BTreeSet<TermKey> {
    frequent_terms
        .iter()
        .map(|t| TermKey::from_term_ids([*t]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(terms: &[(&str, &[u32])]) -> Vec<(TermId, Vec<u32>)> {
        let mut v: Vec<(TermId, Vec<u32>)> = terms
            .iter()
            .map(|(t, p)| (TermId::intern(t), p.to_vec()))
            .collect();
        v.sort_unstable_by_key(|(t, _)| *t);
        v
    }

    fn set(terms: &[&str]) -> BTreeSet<TermId> {
        terms.iter().map(|t| TermId::intern(t)).collect()
    }

    #[test]
    fn min_cover_window_basic() {
        assert_eq!(min_cover_window(&[&[1, 10, 20], &[12, 30]]), Some(2));
        assert_eq!(min_cover_window(&[&[1], &[100]]), Some(99));
        assert_eq!(min_cover_window(&[&[5, 6], &[6, 7], &[4, 8]]), Some(2));
        assert_eq!(min_cover_window(&[&[3]]), Some(0));
        assert_eq!(min_cover_window(&[&[1, 2], &[]]), None);
        assert_eq!(min_cover_window(&[]), None);
    }

    #[test]
    fn min_cover_window_finds_exact_overlap() {
        // All terms at the same position → window 0.
        assert_eq!(min_cover_window(&[&[7, 90], &[7, 50], &[7]]), Some(0));
    }

    #[test]
    fn cooccurrence_respects_window() {
        let d = doc(&[
            ("peer", &[0, 50]),
            ("retriev", &[3, 200]),
            ("network", &[100]),
        ]);
        let close = TermKey::new(["peer", "retriev"]);
        let far = TermKey::new(["retriev", "network"]);
        assert!(cooccurs_within_window(&d, &close, 5));
        assert!(!cooccurs_within_window(&d, &far, 5));
        assert!(cooccurs_within_window(&d, &far, 100));
        // A key with a term missing from the document never co-occurs.
        let missing = TermKey::new(["peer", "absent"]);
        assert!(!cooccurs_within_window(&d, &missing, 1000));
    }

    #[test]
    fn level2_candidates_require_frequent_parent_and_proximity() {
        let d = doc(&[
            ("peer", &[0, 10]),
            ("retriev", &[2]),
            ("network", &[11]),
            ("rare", &[3]),
        ]);
        let frequent_terms = set(&["peer", "retriev", "network"]);
        let parents = single_term_keys(&frequent_terms);
        let config = HdkConfig {
            proximity_window: 5,
            ..Default::default()
        };
        let cands = generate_doc_candidates(&d, &parents, &frequent_terms, 2, &config);
        // peer+retriev (distance 2) and peer+network (distance 1 via positions 10, 11)
        // qualify; retriev+network are 9 apart -> excluded; "rare" is not frequent.
        assert!(cands.contains(&TermKey::new(["peer", "retriev"])));
        assert!(cands.contains(&TermKey::new(["network", "peer"])));
        assert!(!cands.contains(&TermKey::new(["network", "retriev"])));
        assert!(!cands.iter().any(|k| k.contains("rare")));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn disabling_the_proximity_filter_adds_more_candidates() {
        let d = doc(&[("a", &[0]), ("b", &[100]), ("c", &[200])]);
        let frequent_terms = set(&["a", "b", "c"]);
        let parents = single_term_keys(&frequent_terms);
        let with_filter = generate_doc_candidates(
            &d,
            &parents,
            &frequent_terms,
            2,
            &HdkConfig {
                proximity_window: 10,
                ..Default::default()
            },
        );
        let without_filter = generate_doc_candidates(
            &d,
            &parents,
            &frequent_terms,
            2,
            &HdkConfig {
                proximity_window: 10,
                use_proximity_filter: false,
                ..Default::default()
            },
        );
        assert!(with_filter.is_empty());
        assert_eq!(without_filter.len(), 3);
    }

    #[test]
    fn level3_candidates_expand_frequent_pairs_only() {
        let d = doc(&[("a", &[0]), ("b", &[1]), ("c", &[2]), ("d", &[3])]);
        let frequent_terms = set(&["a", "b", "c", "d"]);
        let mut frequent_pairs = BTreeSet::new();
        frequent_pairs.insert(TermKey::new(["a", "b"]));
        let config = HdkConfig::default();
        let cands = generate_doc_candidates(&d, &frequent_pairs, &frequent_terms, 3, &config);
        // Only expansions of the frequent pair {a,b}: abc and abd.
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&TermKey::new(["a", "b", "c"])));
        assert!(cands.contains(&TermKey::new(["a", "b", "d"])));
    }

    #[test]
    fn target_len_bounds_are_enforced() {
        let d = doc(&[("a", &[0]), ("b", &[1])]);
        let frequent_terms = set(&["a", "b"]);
        let parents = single_term_keys(&frequent_terms);
        let config = HdkConfig {
            max_key_len: 2,
            ..Default::default()
        };
        assert!(generate_doc_candidates(&d, &parents, &frequent_terms, 1, &config).is_empty());
        assert!(generate_doc_candidates(&d, &parents, &frequent_terms, 3, &config).is_empty());
        assert_eq!(
            generate_doc_candidates(&d, &parents, &frequent_terms, 2, &config).len(),
            1
        );
    }

    #[test]
    fn documents_without_enough_frequent_terms_yield_nothing() {
        let d = doc(&[("a", &[0]), ("x", &[1])]);
        let frequent_terms = set(&["a", "b"]);
        let parents = single_term_keys(&frequent_terms);
        let cands =
            generate_doc_candidates(&d, &parents, &frequent_terms, 2, &HdkConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn parent_terms_must_be_present_in_the_document() {
        // The frequent pair {a,b} cannot be expanded in a document lacking `b`.
        let d = doc(&[("a", &[0]), ("c", &[1])]);
        let frequent_terms = set(&["a", "b", "c"]);
        let mut parents = BTreeSet::new();
        parents.insert(TermKey::new(["a", "b"]));
        let cands =
            generate_doc_candidates(&d, &parents, &frequent_terms, 3, &HdkConfig::default());
        assert!(cands.is_empty());
    }
}
