//! Property tests for the posting-list wire codec and the threshold-aware
//! probe path:
//!
//! * `decode(encode(list))` equals the list up to score quantization (same
//!   documents in canonical order, same `full_df`/capacity, per-entry score
//!   error within one quantization step, no rank inversion between entries
//!   more than one step apart);
//! * decoding under any `score_floor` yields exactly the monotone prefix of
//!   the fully decoded list at or above the floor;
//! * executing the same query workload with threshold-aware probes on and off
//!   returns the same ranked top-k documents (and never more bytes) across
//!   random corpora and budgets.

use alvisp2p_core::codec::{
    decode_list, decode_list_above, encode_list, encoded_list_len, max_encoded_list_len,
    quantization_step,
};
use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_core::request::{QueryRequest, ThresholdMode};
use alvisp2p_core::strategy::{Hdk, Qdi, SingleTermFull, Strategy as IndexingStrategy};
use alvisp2p_textindex::{
    CorpusConfig, CorpusGenerator, DocId, QueryLogConfig, QueryLogGenerator, SyntheticCorpus,
};
use proptest::prelude::*;
use std::sync::Arc;

fn scored_refs(max: usize) -> impl Strategy<Value = Vec<ScoredRef>> {
    proptest::collection::vec(
        (0u32..40, 0u32..500, 0u64..4_000).prop_map(|(peer, local, s)| ScoredRef {
            doc: DocId::new(peer, local),
            score: s as f64 / 16.0,
        }),
        0..max,
    )
}

proptest! {
    #[test]
    fn round_trip_equals_the_list_up_to_quantization(
        refs in scored_refs(80),
        capacity in 1usize..64,
    ) {
        let list = TruncatedPostingList::from_refs(refs, capacity);
        let bytes = encode_list(&list, None);
        prop_assert_eq!(bytes.len(), encoded_list_len(&list));
        prop_assert!(bytes.len() <= max_encoded_list_len(list.len()));
        let back = decode_list(&bytes).unwrap();

        prop_assert_eq!(back.len(), list.len());
        prop_assert_eq!(back.full_df(), list.full_df());
        prop_assert_eq!(back.capacity(), list.capacity());
        prop_assert_eq!(back.is_truncated(), list.is_truncated());

        // Same documents; scores within one quantization step. Entries may be
        // locally reordered only where quantization collapsed near-ties, so
        // compare the doc sets and per-doc scores rather than positions.
        let step = match (list.worst_score(), list.best_score()) {
            (Some(lo), Some(hi)) => quantization_step(lo, hi) + 1e-9,
            _ => 0.0,
        };
        let mut original: Vec<(DocId, f64)> =
            list.refs().iter().map(|r| (r.doc, r.score)).collect();
        let mut decoded: Vec<(DocId, f64)> =
            back.refs().iter().map(|r| (r.doc, r.score)).collect();
        original.sort_by_key(|e| e.0);
        decoded.sort_by_key(|e| e.0);
        for ((doc_a, score_a), (doc_b, score_b)) in original.iter().zip(&decoded) {
            prop_assert_eq!(doc_a, doc_b);
            prop_assert!((score_a - score_b).abs() <= step,
                "doc {doc_a:?}: {score_a} decoded as {score_b}, step {step}");
        }

        // Rank-inversion bound: entries whose original scores differ by more
        // than one quantization step keep their relative order.
        for (i, a) in back.refs().iter().enumerate() {
            for b in &back.refs()[i + 1..] {
                let orig_a = list.refs().iter().find(|r| r.doc == a.doc).unwrap().score;
                let orig_b = list.refs().iter().find(|r| r.doc == b.doc).unwrap().score;
                prop_assert!(orig_a >= orig_b - step,
                    "decoded rank inversion beyond one step: {orig_a} before {orig_b}");
            }
        }
    }

    #[test]
    fn floored_decode_is_the_monotone_prefix(
        refs in scored_refs(80),
        capacity in 1usize..64,
        floor_per_mille in 0u32..1_200,
    ) {
        let list = TruncatedPostingList::from_refs(refs, capacity);
        let bytes = encode_list(&list, None);
        let full = decode_list(&bytes).unwrap();
        let hi = full.best_score().unwrap_or(0.0);
        let floor = hi * f64::from(floor_per_mille) / 1_000.0;
        let floored = decode_list_above(&bytes, floor).unwrap();

        // Exactly the prefix of the fully decoded list at or above the floor.
        let expected: Vec<ScoredRef> = full
            .refs()
            .iter()
            .copied()
            .filter(|r| r.score >= floor)
            .collect();
        prop_assert_eq!(floored.len(), expected.len());
        for (a, b) in floored.refs().iter().zip(&expected) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert_eq!(a.score, b.score);
        }
        // Floor elision never flips the truncation status.
        prop_assert_eq!(floored.is_truncated(), list.is_truncated());
    }

    #[test]
    fn encode_side_floor_ships_fewer_bytes_and_the_right_prefix(
        refs in scored_refs(80),
        capacity in 1usize..64,
        floor_per_mille in 0u32..1_200,
    ) {
        let list = TruncatedPostingList::from_refs(refs, capacity);
        let hi = list.best_score().unwrap_or(0.0);
        let floor = hi * f64::from(floor_per_mille) / 1_000.0;
        let full = encode_list(&list, None);
        let floored = encode_list(&list, Some(floor));
        prop_assert!(floored.len() <= full.len());
        let back = decode_list(&floored).unwrap();
        let kept = list.refs().iter().filter(|r| r.score >= floor).count();
        prop_assert_eq!(back.len(), kept);
        for (a, b) in back.refs().iter().zip(list.refs()) {
            prop_assert_eq!(a.doc, b.doc);
        }
        prop_assert_eq!(back.is_truncated(), list.is_truncated());
    }

    /// End-to-end frame integrity: flipping any single bit of a valid frame
    /// is either detected (`decode_list` returns an error — in practice the
    /// checksum trailer catches it, occasionally a structural check does) or
    /// harmless (the decode is byte-for-byte identical to the unflipped one,
    /// possible only when the flip lands in bytes the decoder never reads).
    /// A silently different answer is the one forbidden outcome.
    #[test]
    fn single_bit_flips_never_change_a_decoded_answer_silently(
        refs in scored_refs(40),
        capacity in 1usize..64,
        flip_pick in any::<u64>(),
    ) {
        let list = TruncatedPostingList::from_refs(refs, capacity);
        let bytes = encode_list(&list, None);
        let reference = decode_list(&bytes).unwrap();
        let bit = (flip_pick as usize) % (bytes.len() * 8);
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        match decode_list(&flipped) {
            Err(_) => {} // detected: the retryable path the executor takes
            Ok(got) => {
                prop_assert_eq!(got.len(), reference.len(),
                    "bit {} flipped silently changed the entry count", bit);
                prop_assert_eq!(got.full_df(), reference.full_df());
                prop_assert_eq!(got.capacity(), reference.capacity());
                for (a, b) in got.refs().iter().zip(reference.refs()) {
                    prop_assert_eq!(a.doc, b.doc, "bit {} changed a doc silently", bit);
                    prop_assert_eq!(a.score, b.score, "bit {} changed a score silently", bit);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Threshold-aware probes: equal top-k, fewer bytes
// ---------------------------------------------------------------------------

fn corpus(num_docs: usize, seed: u64) -> SyntheticCorpus {
    CorpusGenerator::new(
        CorpusConfig {
            num_docs,
            vocab_size: 300,
            num_topics: 6,
            topic_vocab: 50,
            doc_len_mean: 80,
            doc_len_spread: 30,
            ..Default::default()
        },
        seed,
    )
    .generate()
}

fn network(
    corpus: &SyntheticCorpus,
    strategy: Arc<dyn IndexingStrategy>,
    seed: u64,
) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(8)
        .strategy_arc(strategy)
        .seed(seed)
        .corpus(corpus)
        .build_indexed()
        .expect("valid configuration")
}

fn query_texts(corpus: &SyntheticCorpus, n: usize, seed: u64) -> Vec<String> {
    QueryLogGenerator::new(
        QueryLogConfig {
            num_queries: n,
            distinct_queries: (n / 2).max(10),
            min_terms: 2,
            max_terms: 3,
            ..Default::default()
        },
        seed,
    )
    .generate(corpus)
    .queries
    .into_iter()
    .map(|q| q.text)
    .collect()
}

/// The headline equality: across random corpora and strategies, the ranked
/// top-k documents under the default [`ThresholdMode::Conservative`] are
/// identical — docs and traces — to unthresholded execution, and the
/// thresholded run never ships more bytes. (Deterministic: seeds are fixed.)
#[test]
fn conservative_threshold_keeps_the_top_k_exactly() {
    let strategies: Vec<(&str, Arc<dyn IndexingStrategy>)> = vec![
        ("single-term", Arc::new(SingleTermFull)),
        ("hdk", Arc::new(Hdk::default())),
    ];
    for (docs, seed) in [(160usize, 11u64), (320, 23), (240, 57)] {
        let corpus = corpus(docs, seed);
        let queries = query_texts(&corpus, 24, seed ^ 0x9e);
        for (label, strategy) in &strategies {
            let mut with = network(&corpus, Arc::clone(strategy), seed);
            let mut without = network(&corpus, Arc::clone(strategy), seed);
            for (i, text) in queries.iter().enumerate() {
                let base = QueryRequest::new(text.clone()).from_peer(i % 8).top_k(10);
                let on = with.execute(&base.clone()).unwrap();
                let off = without.execute(&base.threshold_probes(false)).unwrap();
                let on_docs: Vec<_> = on.results.iter().map(|r| r.doc).collect();
                let off_docs: Vec<_> = off.results.iter().map(|r| r.doc).collect();
                assert_eq!(
                    on_docs, off_docs,
                    "{label} corpus({docs},{seed}) query {i} {text:?}: top-k changed"
                );
                // Floor elision only shrinks responses; pruning is preserved,
                // so the traces are identical probe-for-probe.
                assert_eq!(on.trace.nodes, off.trace.nodes);
                assert!(
                    on.bytes <= off.bytes,
                    "{label} query {i}: thresholded probe shipped more bytes"
                );
            }
        }
    }
}

/// The bandwidth-first [`ThresholdMode::Aggressive`] point (`θ / m`): real
/// byte savings on the frequent-term workload (the paper's problematic case)
/// at near-identical top-k membership. Deterministic, so the measured trade
/// is pinned rather than asserted as exact equality.
#[test]
fn aggressive_threshold_trades_bounded_overlap_loss_for_bytes() {
    let corpus = corpus(300, 7);
    // Frequent vocabulary terms: the long posting lists thresholds act on.
    let queries: Vec<String> = (5..25)
        .map(|i| format!("{} {}", corpus.vocabulary[i], corpus.vocabulary[i + 1]))
        .collect();
    let mut aggressive = network(&corpus, Arc::new(SingleTermFull), 7);
    let mut off = network(&corpus, Arc::new(SingleTermFull), 7);
    let mut overlap_sum = 0.0;
    let mut queries_scored = 0usize;
    let mut aggressive_bytes = 0u64;
    let mut off_bytes = 0u64;
    for (i, text) in queries.iter().enumerate() {
        let base = QueryRequest::new(text.clone()).from_peer(i % 8).top_k(10);
        let a = aggressive
            .execute(&base.clone().threshold_mode(ThresholdMode::Aggressive))
            .unwrap();
        let o = off.execute(&base.threshold_probes(false)).unwrap();
        let a_docs: std::collections::HashSet<_> = a.results.iter().map(|r| r.doc).collect();
        let o_docs: std::collections::HashSet<_> = o.results.iter().map(|r| r.doc).collect();
        if !o_docs.is_empty() {
            overlap_sum += a_docs.intersection(&o_docs).count() as f64 / o_docs.len() as f64;
            queries_scored += 1;
        }
        aggressive_bytes += a.bytes;
        off_bytes += o.bytes;
    }
    let mean_overlap = overlap_sum / queries_scored as f64;
    assert!(
        mean_overlap >= 0.9,
        "aggressive thresholding lost too much of the top-k: overlap {mean_overlap:.3}"
    );
    assert!(
        aggressive_bytes < off_bytes,
        "aggressive thresholding saved no bytes ({aggressive_bytes} vs {off_bytes})"
    );
}

/// The headline `RankSafe` invariant: across random corpora × strategies ×
/// byte budgets, rank-safe execution returns top-k documents **and ranks**
/// byte-identical to [`ThresholdMode::Off`] — the merged scores compared as
/// raw bits, not approximately — while never shipping more posting bytes.
/// This is the deterministic-equality bar the heuristic `Aggressive` mode can
/// never meet, and `Conservative`'s soundness argument never covered.
/// (Deterministic: seeds are fixed.)
#[test]
fn rank_safe_matches_off_bit_for_bit_across_the_matrix() {
    let strategies: Vec<(&str, Arc<dyn IndexingStrategy>)> = vec![
        ("single-term", Arc::new(SingleTermFull)),
        ("hdk", Arc::new(Hdk::default())),
    ];
    let budgets: [Option<u64>; 3] = [None, Some(1_500), Some(4_000)];
    let planner = alvisp2p_core::plan::GreedyCost::default();
    for (docs, seed) in [(160usize, 31u64), (320, 43)] {
        let corpus = corpus(docs, seed);
        let queries = query_texts(&corpus, 16, seed ^ 0x5f);
        for (label, strategy) in &strategies {
            for budget in budgets {
                let mut safe = network(&corpus, Arc::clone(strategy), seed);
                let mut off = network(&corpus, Arc::clone(strategy), seed);
                for (i, text) in queries.iter().enumerate() {
                    let mut base = QueryRequest::new(text.clone()).from_peer(i % 8).top_k(10);
                    if let Some(b) = budget {
                        base = base.byte_budget(b);
                    }
                    let safe_req = base.clone().threshold_mode(ThresholdMode::RankSafe);
                    let plan_s = safe.plan_with(&planner, &safe_req).unwrap();
                    let s = safe.run(&plan_s, &safe_req).unwrap();
                    let off_req = base.threshold_probes(false);
                    let plan_o = off.plan_with(&planner, &off_req).unwrap();
                    let o = off.run(&plan_o, &off_req).unwrap();
                    let s_ranked: Vec<(DocId, u64)> = s
                        .results
                        .iter()
                        .map(|r| (r.doc, r.score.to_bits()))
                        .collect();
                    let o_ranked: Vec<(DocId, u64)> = o
                        .results
                        .iter()
                        .map(|r| (r.doc, r.score.to_bits()))
                        .collect();
                    assert_eq!(
                        s_ranked, o_ranked,
                        "{label} corpus({docs},{seed}) budget {budget:?} query {i} {text:?}: \
                         rank-safe diverged from off"
                    );
                    assert!(
                        s.bytes <= o.bytes,
                        "{label} budget {budget:?} query {i}: rank-safe shipped more bytes \
                         ({} vs {})",
                        s.bytes,
                        o.bytes
                    );
                }
            }
        }
    }
}

/// The same bit-for-bit equality under QDI's adaptive indexing. Each query
/// runs against fresh identical networks (adaptation from earlier rank-safe
/// queries could otherwise legitimately drift the two indexes apart, which
/// would test adaptation rather than the floors).
#[test]
fn rank_safe_matches_off_under_qdi_activation() {
    let corpus = corpus(200, 77);
    let queries = query_texts(&corpus, 6, 77 ^ 0x5f);
    let planner = alvisp2p_core::plan::GreedyCost::default();
    for (i, text) in queries.iter().enumerate() {
        let mut safe = network(&corpus, Arc::new(Qdi::default()), 77);
        let mut off = network(&corpus, Arc::new(Qdi::default()), 77);
        let base = QueryRequest::new(text.clone()).from_peer(i % 8).top_k(10);
        let safe_req = base.clone().threshold_mode(ThresholdMode::RankSafe);
        let plan_s = safe.plan_with(&planner, &safe_req).unwrap();
        let s = safe.run(&plan_s, &safe_req).unwrap();
        let off_req = base.threshold_probes(false);
        let plan_o = off.plan_with(&planner, &off_req).unwrap();
        let o = off.run(&plan_o, &off_req).unwrap();
        let s_ranked: Vec<(DocId, u64)> = s
            .results
            .iter()
            .map(|r| (r.doc, r.score.to_bits()))
            .collect();
        let o_ranked: Vec<(DocId, u64)> = o
            .results
            .iter()
            .map(|r| (r.doc, r.score.to_bits()))
            .collect();
        assert_eq!(s_ranked, o_ranked, "qdi query {i} {text:?}");
        assert!(
            s.bytes <= o.bytes,
            "qdi query {i}: rank-safe shipped more bytes"
        );
    }
}

/// Under byte budgets the Reserve guarantee holds in both modes, and whenever
/// the budget is loose enough that neither run was truncated, the equality
/// from the unbudgeted case carries over.
#[test]
fn threshold_probes_respect_budgets_and_agree_when_not_truncated() {
    let corpus = corpus(240, 5);
    let queries = query_texts(&corpus, 16, 99);
    let mut agreements = 0usize;
    for budget in [1_500u64, 6_000, 40_000, u64::MAX / 2] {
        let mut with = network(&corpus, Arc::new(Hdk::default()), 5);
        let mut without = network(&corpus, Arc::new(Hdk::default()), 5);
        for (i, text) in queries.iter().enumerate() {
            let base = QueryRequest::new(text.clone())
                .from_peer(i % 8)
                .top_k(10)
                .byte_budget(budget);
            let plan_on = with
                .plan_with(&alvisp2p_core::plan::GreedyCost::default(), &base)
                .unwrap();
            let on = with.run(&plan_on, &base).unwrap();
            let off_request = base.threshold_probes(false);
            let plan_off = without
                .plan_with(&alvisp2p_core::plan::GreedyCost::default(), &off_request)
                .unwrap();
            let off = without.run(&plan_off, &off_request).unwrap();
            assert!(on.bytes <= budget, "threshold-on exceeded the budget");
            assert!(off.bytes <= budget, "threshold-off exceeded the budget");
            if !on.budget_exhausted && !off.budget_exhausted {
                let on_docs: Vec<_> = on.results.iter().map(|r| r.doc).collect();
                let off_docs: Vec<_> = off.results.iter().map(|r| r.doc).collect();
                assert_eq!(on_docs, off_docs, "budget {budget} query {i}");
                agreements += 1;
            }
        }
    }
    assert!(agreements > 0, "every budget truncated every query");
}
