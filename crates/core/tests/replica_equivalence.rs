//! Hot-key replication must be invisible to query semantics: for any corpus,
//! indexing strategy and budget, a network running [`HotKeyReplication`]
//! returns byte-identical answers to one running [`NoReplication`] — same
//! top-k documents and scores, same lattice trace, same retrieval bytes and
//! hops. Replication only moves *where* a probe is served (and charges its
//! own copies to the overlay-maintenance category), never *what* is answered.

use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::plan::GreedyCost;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::{Hdk, Qdi, SingleTermFull, Strategy};
use alvisp2p_dht::{HotKeyReplication, NoReplication, ReplicationPolicy};
use alvisp2p_textindex::{CorpusConfig, CorpusGenerator, SyntheticCorpus};
use std::sync::Arc;

fn corpus(num_docs: usize, seed: u64) -> SyntheticCorpus {
    let config = CorpusConfig {
        num_docs,
        vocab_size: 500,
        num_topics: 6,
        topic_vocab: 60,
        doc_len_mean: 80,
        doc_len_spread: 30,
        ..Default::default()
    };
    CorpusGenerator::new(config, seed).generate()
}

fn network(
    corpus: &SyntheticCorpus,
    strategy: Arc<dyn Strategy>,
    policy: Arc<dyn ReplicationPolicy>,
    budgeted: bool,
    seed: u64,
) -> AlvisNetwork {
    let mut builder = AlvisNetwork::builder()
        .peers(24)
        .strategy_arc(strategy)
        .replication(policy)
        .seed(seed)
        .corpus(corpus);
    if budgeted {
        builder = builder.planner(GreedyCost::default());
    }
    builder.build_indexed().expect("valid configuration")
}

/// A small skewed query mix: one hot query repeated enough to push its keys
/// over the replication threshold, plus a tail of colder queries.
fn queries(corpus: &SyntheticCorpus) -> Vec<String> {
    let vocab: Vec<&str> = corpus.vocabulary.iter().map(String::as_str).collect();
    let hot = format!("{} {}", vocab[0], vocab[1]);
    let mut out = Vec::new();
    for i in 0..40 {
        out.push(hot.clone());
        if i % 4 == 0 {
            let a = vocab[2 + (i % 7)];
            let b = vocab[10 + (i % 11)];
            out.push(format!("{a} {b}"));
        }
    }
    out
}

fn run(net: &mut AlvisNetwork, queries: &[String], budget: Option<u64>) -> Vec<String> {
    queries
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let mut request = QueryRequest::new(text.clone()).from_peer(i % 24).top_k(10);
            if let Some(bytes) = budget {
                request = request.byte_budget(bytes);
            }
            let response = net.execute(&request).expect("query succeeds");
            // Everything query-visible, serialized for exact comparison.
            format!(
                "docs={:?} trace={:?} hops={} bytes={} exhausted={}",
                response
                    .results
                    .iter()
                    .map(|r| (r.doc, r.score.to_bits()))
                    .collect::<Vec<_>>(),
                response.trace.nodes,
                response.hops,
                response.bytes,
                response.budget_exhausted,
            )
        })
        .collect()
}

fn assert_equivalent(strategy_label: &str, strategy: Arc<dyn Strategy>, budget: Option<u64>) {
    assert_equivalent_with(strategy_label, strategy, budget, true);
}

fn assert_equivalent_with(
    strategy_label: &str,
    strategy: Arc<dyn Strategy>,
    budget: Option<u64>,
    require_replication: bool,
) {
    for seed in [11u64, 29] {
        let c = corpus(250, seed);
        let qs = queries(&c);
        let mut plain = network(
            &c,
            Arc::clone(&strategy),
            Arc::new(NoReplication),
            budget.is_some(),
            seed,
        );
        let mut replicated = network(
            &c,
            Arc::clone(&strategy),
            Arc::new(HotKeyReplication::new(3)),
            budget.is_some(),
            seed,
        );
        let baseline = run(&mut plain, &qs, budget);
        let observed = run(&mut replicated, &qs, budget);
        for (i, (a, b)) in baseline.iter().zip(&observed).enumerate() {
            assert_eq!(
                a, b,
                "{strategy_label} seed {seed} budget {budget:?}: query {i} diverged"
            );
        }
        // The comparison must actually exercise replication: the hot query's
        // keys crossed the threshold and replicas served real probes. (Very
        // tight budgets can legitimately admit too few probes to heat any
        // key; those arms only check equivalence.)
        let stats = replicated.global_index().dht().replication().stats();
        if require_replication {
            assert!(
                stats.replications > 0,
                "{strategy_label} seed {seed}: no key ever replicated — the \
                 equivalence check is vacuous"
            );
            assert!(
                stats.replica_serves > 0,
                "{strategy_label} seed {seed}: no probe was served by a replica"
            );
        }
        assert_eq!(
            plain
                .global_index()
                .dht()
                .replication()
                .stats()
                .replications,
            0,
            "NoReplication must never replicate"
        );
    }
}

#[test]
fn replication_is_result_invisible_for_single_term() {
    assert_equivalent("single-term", Arc::new(SingleTermFull), None);
}

#[test]
fn replication_is_result_invisible_for_hdk() {
    assert_equivalent("hdk", Arc::new(Hdk::default()), None);
}

#[test]
fn replication_is_result_invisible_for_qdi() {
    assert_equivalent("qdi", Arc::new(Qdi::default()), None);
}

#[test]
fn replication_is_result_invisible_under_byte_budgets() {
    assert_equivalent("hdk+reserve", Arc::new(Hdk::default()), Some(6_000));
    assert_equivalent_with("hdk+tight", Arc::new(Hdk::default()), Some(1_500), false);
}

#[test]
fn repair_disabled_default_never_exchanges_a_digest_and_answers_identically() {
    // Anti-entropy repair is opt-in: with the default (disabled) setting, a
    // replicated network — churn included — must never exchange a repair
    // digest or pull a copy, and its answers must be byte-identical to an
    // identical network running with repair enabled. Repair activity may
    // only ever add Overlay upkeep, never change what a query returns.
    let seed = 11u64;
    let c = corpus(250, seed);
    let qs = queries(&c);
    let strategy: Arc<dyn Strategy> = Arc::new(Hdk::default());
    let mut dormant = network(
        &c,
        Arc::clone(&strategy),
        Arc::new(HotKeyReplication::new(3)),
        false,
        seed,
    );
    let mut repairing = network(
        &c,
        Arc::clone(&strategy),
        Arc::new(HotKeyReplication::new(3)),
        false,
        seed,
    );
    repairing.set_repair_enabled(true);

    // Warm both past the replication threshold, then churn one peer in — the
    // churn path triggers a repair round only where repair is enabled.
    let baseline = run(&mut dormant, &qs, None);
    let observed = run(&mut repairing, &qs, None);
    for (i, (a, b)) in baseline.iter().zip(&observed).enumerate() {
        assert_eq!(a, b, "query {i}: repair activity changed the answer");
    }
    dormant
        .global_index_mut()
        .dht_mut()
        .join(alvisp2p_dht::RingId::hash_u64(0xC0FFEE))
        .expect("join");
    repairing
        .global_index_mut()
        .dht_mut()
        .join(alvisp2p_dht::RingId::hash_u64(0xC0FFEE))
        .expect("join");

    let dormant_stats = dormant.global_index().dht().replication().stats();
    assert_eq!(
        dormant_stats.digests_exchanged, 0,
        "repair-disabled default exchanged digests"
    );
    assert_eq!(dormant_stats.repairs_pulled, 0);
    // The enabled arm's churn-time repair round really ran (non-vacuous).
    assert!(
        repairing
            .global_index()
            .dht()
            .replication()
            .stats()
            .digests_exchanged
            > 0,
        "the repair-enabled arm never exchanged a digest — the comparison is vacuous"
    );
}
