//! Sketch pruning must be invisible to query semantics: for any corpus,
//! indexing strategy, threshold mode and budget, a network publishing
//! cost-based sketches returns the same answers as one running
//! [`SketchPolicy::NoSketches`] — same top-k documents and scores, same
//! lattice trace, same hops, same budget verdicts. Sketches only change *how
//! much crosses the wire*: a pruned probe records the exact posting list the
//! wire would have carried (the all-elided frame) for zero retrieval bytes,
//! and its would-have-been bytes are still admitted against byte budgets so
//! the probe schedule never diverges.

use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::plan::GreedyCost;
use alvisp2p_core::request::{QueryRequest, ThresholdMode};
use alvisp2p_core::sketch::SketchPolicy;
use alvisp2p_core::strategy::{Hdk, Qdi, SingleTermFull, Strategy};
use alvisp2p_textindex::{CorpusConfig, CorpusGenerator, SyntheticCorpus};
use std::sync::Arc;

fn corpus(num_docs: usize, seed: u64) -> SyntheticCorpus {
    let config = CorpusConfig {
        num_docs,
        vocab_size: 500,
        num_topics: 6,
        topic_vocab: 60,
        doc_len_mean: 80,
        doc_len_spread: 30,
        ..Default::default()
    };
    CorpusGenerator::new(config, seed).generate()
}

fn network(
    corpus: &SyntheticCorpus,
    strategy: Arc<dyn Strategy>,
    policy: SketchPolicy,
    budgeted: bool,
    seed: u64,
) -> AlvisNetwork {
    let mut builder = AlvisNetwork::builder()
        .peers(24)
        .strategy_arc(strategy)
        .sketch_policy(policy)
        .seed(seed)
        .corpus(corpus);
    if budgeted {
        builder = builder.planner(GreedyCost::default());
    }
    builder.build_indexed().expect("valid configuration")
}

/// A small skewed query mix: one hot query repeated (so adaptive strategies
/// get to mutate the index mid-run and exercise sketch staleness), plus a
/// tail of colder queries.
fn queries(corpus: &SyntheticCorpus) -> Vec<String> {
    let vocab: Vec<&str> = corpus.vocabulary.iter().map(String::as_str).collect();
    let hot = format!("{} {}", vocab[0], vocab[1]);
    let mut out = Vec::new();
    for i in 0..40 {
        out.push(hot.clone());
        if i % 4 == 0 {
            let a = vocab[2 + (i % 7)];
            let b = vocab[10 + (i % 11)];
            out.push(format!("{a} {b}"));
        }
    }
    out
}

struct Outcome {
    /// Everything query-visible except traffic, serialized for exact
    /// comparison.
    semantic: String,
    bytes: u64,
    pruned: usize,
}

fn run(
    net: &mut AlvisNetwork,
    queries: &[String],
    budget: Option<u64>,
    mode: ThresholdMode,
) -> Vec<Outcome> {
    queries
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let mut request = QueryRequest::new(text.clone())
                .from_peer(i % 24)
                .top_k(10)
                .threshold_mode(mode);
            if let Some(bytes) = budget {
                request = request.byte_budget(bytes);
            }
            let response = net.execute(&request).expect("query succeeds");
            Outcome {
                semantic: format!(
                    "docs={:?} trace={:?} hops={} exhausted={}",
                    response
                        .results
                        .iter()
                        .map(|r| (r.doc, r.score.to_bits()))
                        .collect::<Vec<_>>(),
                    response.trace.nodes,
                    response.hops,
                    response.budget_exhausted,
                ),
                bytes: response.bytes,
                pruned: response.pruned_probes,
            }
        })
        .collect()
}

fn assert_equivalent(
    strategy_label: &str,
    strategy: Arc<dyn Strategy>,
    budget: Option<u64>,
    mode: ThresholdMode,
    require_pruning: bool,
) {
    for seed in [11u64, 29] {
        let c = corpus(250, seed);
        let qs = queries(&c);
        let mut plain = network(
            &c,
            Arc::clone(&strategy),
            SketchPolicy::NoSketches,
            budget.is_some(),
            seed,
        );
        let mut sketched = network(
            &c,
            Arc::clone(&strategy),
            SketchPolicy::cost_based(),
            budget.is_some(),
            seed,
        );
        assert!(
            sketched.sketch_report().sketched_keys > 0,
            "{strategy_label} seed {seed}: the cost model maintained no sketch — \
             the equivalence check is vacuous"
        );
        assert!(
            sketched.sketch_report().upkeep_accounted(),
            "{strategy_label} seed {seed}: a maintained sketch's upkeep exceeds \
             its modeled savings"
        );
        let baseline = run(&mut plain, &qs, budget, mode);
        let observed = run(&mut sketched, &qs, budget, mode);
        let mut plain_bytes = 0u64;
        let mut sketch_bytes = 0u64;
        let mut pruned = 0usize;
        for (i, (a, b)) in baseline.iter().zip(&observed).enumerate() {
            assert_eq!(
                a.semantic, b.semantic,
                "{strategy_label} seed {seed} budget {budget:?} {mode:?}: query {i} diverged"
            );
            assert!(
                b.bytes <= a.bytes,
                "{strategy_label} seed {seed}: query {i} spent more with sketches \
                 ({} > {})",
                b.bytes,
                a.bytes
            );
            assert_eq!(
                a.pruned, 0,
                "{strategy_label} seed {seed}: NoSketches must never prune"
            );
            plain_bytes += a.bytes;
            sketch_bytes += b.bytes;
            pruned += b.pruned;
        }
        if require_pruning {
            assert!(
                pruned > 0,
                "{strategy_label} seed {seed} budget {budget:?} {mode:?}: no probe \
                 was ever pruned — the equivalence check is vacuous"
            );
            assert!(
                sketch_bytes < plain_bytes,
                "{strategy_label} seed {seed}: pruning saved no retrieval bytes \
                 ({sketch_bytes} vs {plain_bytes})"
            );
        }
    }
}

#[test]
fn sketches_are_result_invisible_for_single_term() {
    assert_equivalent(
        "single-term",
        Arc::new(SingleTermFull),
        None,
        ThresholdMode::Aggressive,
        true,
    );
}

#[test]
fn sketches_are_result_invisible_for_hdk() {
    assert_equivalent(
        "hdk",
        Arc::new(Hdk::default()),
        None,
        ThresholdMode::Aggressive,
        true,
    );
}

#[test]
fn sketches_are_result_invisible_for_qdi() {
    assert_equivalent(
        "qdi",
        Arc::new(Qdi::default()),
        None,
        ThresholdMode::Aggressive,
        true,
    );
}

#[test]
fn sketches_are_result_invisible_under_conservative_floors() {
    // Conservative floors are lower, so pruning fires less often (possibly
    // never on small corpora); the equivalence itself must still hold.
    assert_equivalent(
        "hdk+conservative",
        Arc::new(Hdk::default()),
        None,
        ThresholdMode::Conservative,
        false,
    );
}

#[test]
fn sketches_are_result_invisible_under_byte_budgets() {
    // Reserve-policy budget admission runs on spent + virtual bytes, so the
    // schedule (and the budget verdict) must not diverge even when pruning
    // saves real bytes.
    assert_equivalent(
        "hdk+reserve",
        Arc::new(Hdk::default()),
        Some(6_000),
        ThresholdMode::Aggressive,
        true,
    );
    assert_equivalent(
        "hdk+tight",
        Arc::new(Hdk::default()),
        Some(1_500),
        ThresholdMode::Aggressive,
        false,
    );
}
