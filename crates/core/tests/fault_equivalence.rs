//! The fault plane must be invisible until it injects something: a network
//! running [`FaultPlane::NoFaults`] with the default [`RetryPolicy`] is
//! byte-identical to one built before the plane existed — same top-k
//! documents and scores, same lattice trace, same retrieval bytes and hops —
//! and reports zero retries, zero failed probes, zero hedged serves and a
//! completeness fraction of exactly `1.0`.
//!
//! Beyond the inert default, this suite pins the robustness behaviour itself:
//! an *active* plane whose faults never fire must still be byte-identical
//! (the retry loop's per-attempt accounting equals the plain probe path), a
//! crashed primary mid-schedule must be absorbed by retry + replica failover
//! without changing the answer, and a crashed primary *without* replicas must
//! degrade the answer gracefully instead of erroring out the query.

use alvisp2p_core::fault::{FaultPlane, RetryPolicy};
use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::{Hdk, Qdi, SingleTermFull, Strategy};
use alvisp2p_core::TermKey;
use alvisp2p_dht::{HotKeyReplication, NoReplication, ReplicationPolicy};
use alvisp2p_textindex::{CorpusConfig, CorpusGenerator, SyntheticCorpus};
use std::sync::Arc;

fn corpus(num_docs: usize, seed: u64) -> SyntheticCorpus {
    let config = CorpusConfig {
        num_docs,
        vocab_size: 500,
        num_topics: 6,
        topic_vocab: 60,
        doc_len_mean: 80,
        doc_len_spread: 30,
        ..Default::default()
    };
    CorpusGenerator::new(config, seed).generate()
}

fn network(
    corpus: &SyntheticCorpus,
    strategy: Arc<dyn Strategy>,
    replication: Arc<dyn ReplicationPolicy>,
    faults: FaultPlane,
    policy: RetryPolicy,
    seed: u64,
) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(24)
        .strategy_arc(strategy)
        .replication(replication)
        .faults(faults)
        .retry_policy(policy)
        .seed(seed)
        .corpus(corpus)
        .build_indexed()
        .expect("valid configuration")
}

/// The skewed query mix shared with the other equivalence suites: one hot
/// query repeated (heating replication and adaptive strategies), plus a tail
/// of colder queries.
fn queries(corpus: &SyntheticCorpus) -> Vec<String> {
    let vocab: Vec<&str> = corpus.vocabulary.iter().map(String::as_str).collect();
    let hot = format!("{} {}", vocab[0], vocab[1]);
    let mut out = Vec::new();
    for i in 0..40 {
        out.push(hot.clone());
        if i % 4 == 0 {
            let a = vocab[2 + (i % 7)];
            let b = vocab[10 + (i % 11)];
            out.push(format!("{a} {b}"));
        }
    }
    out
}

/// Everything query-visible, serialized for exact comparison, plus the
/// robustness counters.
fn run(net: &mut AlvisNetwork, queries: &[String]) -> Vec<String> {
    queries
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let request = QueryRequest::new(text.clone()).from_peer(i % 24).top_k(10);
            let response = net.execute(&request).expect("query succeeds");
            format!(
                "docs={:?} trace={:?} hops={} bytes={} exhausted={} \
                 retries={} failed={} hedged={} fraction={}",
                response
                    .results
                    .iter()
                    .map(|r| (r.doc, r.score.to_bits()))
                    .collect::<Vec<_>>(),
                response.trace.nodes,
                response.hops,
                response.bytes,
                response.budget_exhausted,
                response.retries,
                response.failed_probes,
                response.hedged,
                response.completeness.fraction(),
            )
        })
        .collect()
}

fn assert_byte_identical(strategy_label: &str, strategy: Arc<dyn Strategy>, faults: FaultPlane) {
    for seed in [11u64, 29] {
        let c = corpus(250, seed);
        let qs = queries(&c);
        let mut plain = network(
            &c,
            Arc::clone(&strategy),
            Arc::new(NoReplication),
            FaultPlane::NoFaults,
            RetryPolicy::default(),
            seed,
        );
        let mut observed = network(
            &c,
            Arc::clone(&strategy),
            Arc::new(NoReplication),
            faults.clone(),
            RetryPolicy::default(),
            seed,
        );
        let baseline = run(&mut plain, &qs);
        let subject = run(&mut observed, &qs);
        for (i, (a, b)) in baseline.iter().zip(&subject).enumerate() {
            assert_eq!(
                a, b,
                "{strategy_label} seed {seed} plane {faults:?}: query {i} diverged"
            );
            assert!(
                a.contains("retries=0 failed=0 hedged=0 fraction=1"),
                "{strategy_label} seed {seed}: fault-free run reported robustness \
                 activity: {a}"
            );
        }
    }
}

#[test]
fn no_faults_is_byte_identical_for_single_term() {
    assert_byte_identical(
        "single-term",
        Arc::new(SingleTermFull),
        FaultPlane::NoFaults,
    );
}

#[test]
fn no_faults_is_byte_identical_for_hdk() {
    assert_byte_identical("hdk", Arc::new(Hdk::default()), FaultPlane::NoFaults);
}

#[test]
fn no_faults_is_byte_identical_for_qdi() {
    assert_byte_identical("qdi", Arc::new(Qdi::default()), FaultPlane::NoFaults);
}

#[test]
fn inactive_seeded_plane_is_byte_identical() {
    // A seeded plane with zero rates and nothing crashed is inactive: the
    // executor must keep taking the plain probe path.
    assert_byte_identical(
        "hdk+inactive-seeded",
        Arc::new(Hdk::default()),
        FaultPlane::seeded(99),
    );
}

#[test]
fn active_plane_whose_faults_never_fire_is_byte_identical() {
    // Crashing a peer index that does not exist activates the plane — every
    // probe now runs through the retry loop — but no fault can ever fire.
    // This pins the retry path's per-attempt accounting (routing, request and
    // response charges) to the plain path's, byte for byte.
    let mut faults = FaultPlane::seeded(7);
    faults.crash(9_999);
    assert!(faults.is_active());
    assert_byte_identical(
        "hdk+phantom-crash",
        Arc::new(Hdk::default()),
        faults.clone(),
    );
    assert_byte_identical("qdi+phantom-crash", Arc::new(Qdi::default()), faults);
}

/// Builds two identically-warmed replicated networks, crashes `target` on the
/// second, and returns both networks plus the hot request to compare on.
fn warmed_pair(seed: u64) -> (AlvisNetwork, AlvisNetwork, QueryRequest) {
    let c = corpus(250, seed);
    let qs = queries(&c);
    let build = || {
        network(
            &c,
            Arc::new(Hdk::default()),
            Arc::new(HotKeyReplication::new(3)),
            FaultPlane::NoFaults,
            RetryPolicy::default(),
            seed,
        )
    };
    let mut a = build();
    let mut b = build();
    // Identical warmup heats the hot keys over the replication threshold on
    // both networks, so the fault-free and faulted runs compare like for
    // like.
    run(&mut a, &qs);
    run(&mut b, &qs);
    let hot = qs[0].clone();
    let request = QueryRequest::new(hot).from_peer(0).top_k(10);
    (a, b, request)
}

#[test]
fn crashed_primary_mid_schedule_fails_over_to_a_replica() {
    let (mut fault_free, mut faulted, request) = warmed_pair(11);
    let baseline = fault_free.execute(&request).expect("fault-free query");
    assert!(!baseline.results.is_empty());

    // Pick the crash set deterministically from the plan: for a scheduled
    // probe key with replicas, crash the peer its load-aware serve selection
    // currently lands on *and* its primary (they may coincide), leaving at
    // least one live replica holder. The first serve attempt is guaranteed
    // to hit a crashed peer, and failover is forced onto a non-primary
    // replica — which must serve the probe from its synchronized replica
    // store. The querying peer is never crashed, and every other scheduled
    // key must keep at least one live holder.
    let plan = faulted.plan(&request).expect("plan");
    let probe_keys: Vec<TermKey> = plan.probes().map(|n| n.key.clone()).collect();
    let mut crash_set: Option<Vec<usize>> = None;
    for key in &probe_keys {
        let cands = faulted.global_index().serving_candidates(key);
        let Some(sel) = faulted
            .global_index()
            .dht()
            .least_loaded_holder(key.ring_id())
        else {
            continue;
        };
        let primary = cands[0];
        let mut set = vec![sel];
        if primary != sel {
            set.push(primary);
        }
        if set.contains(&request.origin) || !cands.iter().any(|c| !set.contains(c)) {
            continue;
        }
        let safe = probe_keys.iter().all(|k| {
            let ck = faulted.global_index().serving_candidates(k);
            ck.iter().any(|c| !set.contains(c))
        });
        if safe {
            crash_set = Some(set);
            break;
        }
    }
    let crash_set =
        crash_set.expect("a replicated probed key with a surviving replica holder exists");
    for peer in &crash_set {
        faulted.fault_plane_mut().crash(*peer);
    }
    let recovered = faulted.execute(&request).expect("faulted query succeeds");

    // Retry + failover re-serves every probe the crash hit from a surviving
    // replica holder: the answer is the fault-free answer.
    let docs = |r: &alvisp2p_core::request::QueryResponse| {
        r.results
            .iter()
            .map(|d| (d.doc, d.score.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        docs(&baseline),
        docs(&recovered),
        "failover changed the answer"
    );
    assert_eq!(
        recovered.failed_probes, 0,
        "every probe should have been recovered, not recorded as failed"
    );
    assert_eq!(recovered.completeness.fraction(), 1.0);
    assert!(
        recovered.retries > 0,
        "the crash was never even noticed — the test exercised nothing"
    );
    assert!(
        recovered.hedged > 0,
        "no serve was failed over off the crashed primary"
    );
    assert!(
        recovered.bytes >= baseline.bytes,
        "retries cannot make the query cheaper"
    );
}

#[test]
fn crashed_primary_without_replicas_degrades_instead_of_erroring() {
    let seed = 11u64;
    let c = corpus(250, seed);
    let qs = queries(&c);
    let mut net = network(
        &c,
        Arc::new(Hdk::default()),
        Arc::new(NoReplication),
        FaultPlane::NoFaults,
        RetryPolicy::default(),
        seed,
    );
    run(&mut net, &qs);
    let request = QueryRequest::new(qs[0].clone()).from_peer(0).top_k(10);
    let plan = net.plan(&request).expect("plan");
    let probe_keys: Vec<TermKey> = plan.probes().map(|n| n.key.clone()).collect();
    // Crash the primary of the first scheduled probe that is not the origin:
    // with no replicas, nothing can serve its keys.
    let target = probe_keys
        .iter()
        .filter_map(|k| net.global_index().serving_candidates(k).first().copied())
        .find(|p| *p != request.origin)
        .expect("a non-origin primary exists");
    net.fault_plane_mut().crash(target);

    let degraded = net.execute(&request).expect("query must not error");
    assert!(
        degraded.failed_probes > 0,
        "the crashed primary's probes should be recorded as failed"
    );
    assert!(degraded.completeness.is_degraded());
    assert!(degraded.completeness.fraction() < 1.0);
    assert!(
        !degraded.completeness.failures.is_empty(),
        "per-key failure causes must be reported"
    );
    // The schedule continued past the failures: the trace still covers every
    // planned probe (failed ones included), and the query still has answers
    // from the surviving keys whenever any key was servable.
    assert_eq!(
        degraded.trace.probes,
        probe_keys.len(),
        "failures must not truncate the schedule"
    );
}

#[test]
fn routing_failures_no_longer_abort_the_query_stream() {
    // A routing-level `DhtError::LookupFailed` used to surface as
    // `next_event() -> Err`, zeroing out the whole query over one unreachable
    // key. With a hop budget too tight for some lookups — and *no* fault
    // plane at all — every query must still complete, recording the
    // unreachable keys as per-probe failures with a `PeerDown` cause.
    let seed = 11u64;
    let c = corpus(250, seed);
    let qs = queries(&c);
    let mut net = AlvisNetwork::builder()
        .peers(24)
        .strategy_arc(Arc::new(Hdk::default()) as Arc<dyn Strategy>)
        .dht(alvisp2p_dht::DhtConfig {
            max_hops: 1,
            ..Default::default()
        })
        .seed(seed)
        .corpus(&c)
        .build_indexed()
        .expect("valid configuration");
    assert!(!net.fault_plane().is_active());
    let mut failed = 0usize;
    for (i, text) in qs.iter().take(12).enumerate() {
        let request = QueryRequest::new(text.clone()).from_peer(i % 24).top_k(10);
        let response = net
            .execute(&request)
            .expect("an unreachable key must degrade the answer, not abort the query");
        failed += response.failed_probes;
        for (_, cause) in &response.completeness.failures {
            assert_eq!(*cause, alvisp2p_core::fault::FailureCause::PeerDown);
        }
        assert_eq!(response.retries, 0, "routing failures are not retried");
    }
    assert!(
        failed > 0,
        "a 1-hop budget over 24 peers must make some lookups fail — \
         the regression check is vacuous"
    );
}

#[test]
fn corrupt_frames_are_absorbed_by_retries_without_changing_the_answer() {
    // Bit-flip corruption is detected by the frame checksum and surfaces as a
    // retryable probe outcome: the retry draws a clean response, so the
    // ranked answer matches the fault-free baseline exactly — corruption may
    // cost bytes, never correctness.
    let seed = 11u64;
    let c = corpus(250, seed);
    let qs = queries(&c);
    let build = |faults: FaultPlane| {
        network(
            &c,
            Arc::new(Hdk::default()),
            Arc::new(NoReplication),
            faults,
            RetryPolicy::default(),
            seed,
        )
    };
    let mut clean = build(FaultPlane::NoFaults);
    let mut corrupted = build(FaultPlane::seeded(5).with_corruption(0.05));
    let mut corrupt_frames = 0usize;
    for (i, text) in qs.iter().enumerate() {
        let request = QueryRequest::new(text.clone()).from_peer(i % 24).top_k(10);
        let baseline = clean.execute(&request).expect("clean query");
        let response = corrupted.execute(&request).expect("corrupted query");
        let docs = |r: &alvisp2p_core::request::QueryResponse| {
            r.results
                .iter()
                .map(|d| (d.doc, d.score.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            docs(&baseline),
            docs(&response),
            "query {i}: a corrupt frame leaked into the answer"
        );
        assert_eq!(response.completeness.fraction(), 1.0);
        assert!(
            response.bytes >= baseline.bytes,
            "query {i}: re-probing a corrupt response cannot be free"
        );
        corrupt_frames += response.corrupt_probes;
    }
    assert!(
        corrupt_frames > 0,
        "a 5% corruption rate over the mix must hit some frames — \
         the equivalence check is vacuous"
    );
}

#[test]
fn publish_machinery_is_inert_under_no_faults() {
    // The versioned-publication path must be invisible until publish loss is
    // injected: a NoFaults build acknowledges every publication inline, so
    // the pending set is empty and a re-publication round is a pure no-op —
    // no resends, no applications, not a single byte charged.
    let seed = 29u64;
    let c = corpus(250, seed);
    let mut net = network(
        &c,
        Arc::new(Hdk::default()),
        Arc::new(NoReplication),
        FaultPlane::NoFaults,
        RetryPolicy::default(),
        seed,
    );
    assert_eq!(net.pending_publishes(), 0);
    let before = net.traffic_snapshot();
    assert_eq!(net.republish_round(), (0, 0));
    let delta = net.traffic_snapshot().since(&before);
    assert_eq!(
        delta.bytes_sent(),
        0,
        "an idle republish round charged bytes"
    );
    assert_eq!(delta.messages_sent(), 0);
}

#[test]
fn message_loss_is_absorbed_by_retries() {
    let seed = 29u64;
    let c = corpus(250, seed);
    let qs = queries(&c);
    let mut net = network(
        &c,
        Arc::new(Hdk::default()),
        Arc::new(NoReplication),
        FaultPlane::seeded(5).with_loss(0.10),
        RetryPolicy::default(),
        seed,
    );
    let mut retries = 0usize;
    let mut fraction_sum = 0.0f64;
    let mut count = 0usize;
    for (i, text) in qs.iter().enumerate() {
        let request = QueryRequest::new(text.clone()).from_peer(i % 24).top_k(10);
        let response = net.execute(&request).expect("lossy query still succeeds");
        retries += response.retries;
        fraction_sum += response.completeness.fraction();
        count += 1;
    }
    assert!(retries > 0, "10% loss over the mix must trigger retries");
    let mean_fraction = fraction_sum / count as f64;
    assert!(
        mean_fraction > 0.99,
        "with 2 retries, p(probe exhausted) ~ 0.1^3; mean completeness was {mean_fraction}"
    );
}
