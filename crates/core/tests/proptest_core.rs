//! Property-based tests for the core indexing/retrieval layer: HDK window machinery,
//! result merging, QDI decision logic and the global distributed index.

use alvisp2p_core::global_index::GlobalIndex;
use alvisp2p_core::hdk::{cooccurs_within_window, min_cover_window};
use alvisp2p_core::key::TermKey;
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_core::ranking::merge_retrieved;
use alvisp2p_dht::DhtConfig;
use alvisp2p_netsim::TrafficCategory;
use alvisp2p_textindex::{DocId, TermId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Brute-force minimum covering window used as the reference implementation.
fn brute_force_window(lists: &[Vec<u32>]) -> Option<u32> {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return None;
    }
    let mut best: Option<u32> = None;
    fn recurse(lists: &[Vec<u32>], chosen: &mut Vec<u32>, best: &mut Option<u32>) {
        if chosen.len() == lists.len() {
            let min = *chosen.iter().min().unwrap();
            let max = *chosen.iter().max().unwrap();
            let spread = max - min;
            *best = Some(best.map_or(spread, |b| b.min(spread)));
            return;
        }
        for &p in &lists[chosen.len()] {
            chosen.push(p);
            recurse(lists, chosen, best);
            chosen.pop();
        }
    }
    recurse(lists, &mut Vec::new(), &mut best);
    best
}

proptest! {
    #[test]
    fn min_cover_window_matches_brute_force(
        lists in proptest::collection::vec(
            proptest::collection::btree_set(0u32..60, 1..6),
            1..4
        ),
    ) {
        let lists: Vec<Vec<u32>> = lists
            .into_iter()
            .map(|s| s.into_iter().collect::<Vec<u32>>())
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        prop_assert_eq!(min_cover_window(&refs), brute_force_window(&lists));
    }

    #[test]
    fn cooccurrence_is_monotone_in_the_window_size(
        positions_a in proptest::collection::btree_set(0u32..100, 1..6),
        positions_b in proptest::collection::btree_set(0u32..100, 1..6),
        window in 0u32..50,
    ) {
        let doc = {
            let mut d = vec![
                (TermId::intern("alpha"), positions_a.iter().copied().collect::<Vec<u32>>()),
                (TermId::intern("beta"), positions_b.iter().copied().collect::<Vec<u32>>()),
            ];
            d.sort_unstable_by_key(|(t, _)| *t);
            d
        };
        let key = TermKey::new(["alpha", "beta"]);
        let narrow = cooccurs_within_window(&doc, &key, window);
        let wide = cooccurs_within_window(&doc, &key, window + 25);
        // Anything that co-occurs in a narrow window also co-occurs in a wider one.
        prop_assert!(!narrow || wide);
        // With a huge window, co-occurrence only requires both terms to be present.
        prop_assert!(cooccurs_within_window(&doc, &key, 1_000));
    }

    #[test]
    fn merged_results_never_exceed_the_sum_of_key_scores(
        per_key in proptest::collection::vec(
            (proptest::collection::hash_set("[a-d]{1}", 1..4),
             proptest::collection::vec((0u32..30, 0u32..1000u32), 1..20)),
            1..5
        ),
        k in 1usize..20,
    ) {
        // Build retrieved lists from arbitrary (key, postings) data.
        let retrieved: Vec<(TermKey, TruncatedPostingList)> = per_key
            .into_iter()
            .map(|(terms, postings)| {
                let key = TermKey::new(terms);
                let list = TruncatedPostingList::from_refs(
                    postings.into_iter().map(|(doc, s)| ScoredRef {
                        doc: DocId::new(0, doc),
                        score: f64::from(s) / 10.0,
                    }),
                    64,
                );
                (key, list)
            })
            .collect();
        let merged = merge_retrieved(&retrieved, k);
        prop_assert!(merged.len() <= k);
        // Per-document upper bound: the sum of that document's scores across all lists.
        for r in &merged {
            let upper: f64 = retrieved
                .iter()
                .filter_map(|(_, list)| list.refs().iter().find(|x| x.doc == r.doc).map(|x| x.score))
                .sum();
            prop_assert!(r.score <= upper + 1e-9, "doc {:?}: {} > {}", r.doc, r.score, upper);
            prop_assert!(r.score > 0.0 || upper == 0.0);
        }
        // Ranking order is respected.
        for w in merged.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn global_index_stores_every_published_key_at_its_responsible_peer(
        peers in 2usize..32,
        keys in proptest::collection::hash_set("[a-h]{1,6}", 1..25),
        seed: u64,
    ) {
        let mut gi = GlobalIndex::new(DhtConfig::default(), seed, peers);
        let keys: Vec<TermKey> = keys.into_iter().map(TermKey::single).collect();
        for (i, key) in keys.iter().enumerate() {
            let list = TruncatedPostingList::from_refs(
                [ScoredRef { doc: DocId::new(0, i as u32), score: 1.0 }],
                16,
            );
            gi.publish_postings(i % peers, key, &list, 16).unwrap();
        }
        prop_assert_eq!(gi.activated_keys(), keys.len());
        // Every key is found by a probe from any origin and the per-peer loads sum up.
        for (i, key) in keys.iter().enumerate() {
            let probe = gi.probe((i + 1) % peers, key, i as u64, 16, None).unwrap();
            prop_assert!(probe.found(), "published key {key} not found");
        }
        let load_sum: usize = gi.per_peer_load().iter().map(|(k, _)| *k).sum();
        prop_assert_eq!(load_sum, keys.len());
        // The activated key list is exactly the published set.
        let published: BTreeSet<String> = keys.iter().map(|k| k.canonical()).collect();
        let activated: BTreeSet<String> =
            gi.activated_key_list().iter().map(|k| k.canonical()).collect();
        prop_assert_eq!(published, activated);
    }

    #[test]
    fn probe_traffic_is_bounded_by_the_truncation_capacity(
        capacity in 1usize..64,
        published in 1u32..200,
        seed: u64,
    ) {
        let mut gi = GlobalIndex::new(DhtConfig::default(), seed, 16);
        let key = TermKey::new(["frequent", "pair"]);
        let list = TruncatedPostingList::from_refs(
            (0..published).map(|i| ScoredRef { doc: DocId::new(0, i), score: f64::from(i) }),
            capacity,
        );
        gi.publish_postings(0, &key, &list, capacity).unwrap();
        let before = gi.stats_snapshot();
        gi.probe(5, &key, 1, capacity, None).unwrap();
        let delta = gi.stats_snapshot().since(&before);
        let retrieval = delta.category(TrafficCategory::Retrieval).bytes as usize;
        // The response can never exceed capacity * sizeof(ref) plus bounded overheads
        // (request, routing messages, envelopes).
        let routing_allowance = 16 * (48 + 64 + 32);
        prop_assert!(
            retrieval <= capacity * 12 + 16 + routing_allowance,
            "retrieval bytes {} for capacity {}",
            retrieval,
            capacity
        );
    }
}
