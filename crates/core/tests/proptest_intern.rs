//! Model-based equivalence tests for the interned [`TermKey`]: every observable
//! behaviour — canonicalisation (sort + dedup), ordering, subset/domination,
//! ring placement, lattice enumeration order, expansion, serde shape — must be
//! indistinguishable from the seed's `Vec<String>` implementation, which is
//! re-implemented here as the reference model. (End-to-end trace equivalence on
//! random corpora is additionally covered by the `BestEffort` planner
//! equivalence tests in `tests/proptest_invariants.rs` at the workspace root.)

use alvisp2p_core::key::TermKey;
use alvisp2p_dht::RingId;
use alvisp2p_textindex::TermId;
use proptest::prelude::*;

/// The string-based reference model: the seed's canonical form.
fn model(terms: &[String]) -> Vec<String> {
    let mut t = terms.to_vec();
    t.sort_unstable();
    t.dedup();
    t
}

/// The seed's lattice enumeration: size-descending, canonical-sorted per size.
fn model_subsets_desc(canon: &[String]) -> Vec<Vec<String>> {
    let n = canon.len();
    let mut out = Vec::new();
    for size in (1..=n).rev() {
        let mut level = Vec::new();
        for mask in 1u32..(1u32 << n) {
            if mask.count_ones() as usize != size {
                continue;
            }
            level.push(
                (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| canon[i].clone())
                    .collect::<Vec<String>>(),
            );
        }
        level.sort();
        out.extend(level);
    }
    out
}

fn term() -> impl Strategy<Value = String> {
    // Length 1–6 over a small alphabet: plenty of duplicate/subset pressure at
    // the short end, steady interner growth at the long end.
    "[a-f]{1,6}"
}

fn term_vec() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(term(), 1..6)
}

proptest! {
    #[test]
    fn construction_matches_the_string_model(terms in term_vec()) {
        let key = TermKey::new(terms.clone());
        let canon = model(&terms);
        prop_assert_eq!(key.terms(), canon.clone());
        prop_assert_eq!(key.len(), canon.len());
        prop_assert_eq!(key.canonical(), canon.join("+"));
        prop_assert_eq!(format!("{key}"), canon.join("+"));
    }

    #[test]
    fn ring_placement_matches_hashing_the_canonical_string(terms in term_vec()) {
        // The cached hash must place the key exactly where the seed's
        // join-and-hash placed it.
        let key = TermKey::new(terms.clone());
        prop_assert_eq!(key.ring_id(), RingId::hash_str(&model(&terms).join("+")));
    }

    #[test]
    fn ordering_matches_vec_string_ordering(a in term_vec(), b in term_vec()) {
        let (ka, kb) = (TermKey::new(a.clone()), TermKey::new(b.clone()));
        let (ma, mb) = (model(&a), model(&b));
        prop_assert_eq!(ka.cmp(&kb), ma.cmp(&mb));
        prop_assert_eq!(ka == kb, ma == mb);
        // Hash consistency: equal keys hash equally (std::hash::Hash contract).
        if ka == kb {
            prop_assert_eq!(ka.ring_id(), kb.ring_id());
        }
    }

    #[test]
    fn subset_and_domination_match_set_semantics(a in term_vec(), b in term_vec()) {
        let (ka, kb) = (TermKey::new(a.clone()), TermKey::new(b.clone()));
        let (ma, mb) = (model(&a), model(&b));
        let subset = ma.iter().all(|t| mb.contains(t));
        prop_assert_eq!(ka.is_subset_of(&kb), subset);
        prop_assert_eq!(ka.dominates(&kb), mb.len() < ma.len() && mb.iter().all(|t| ma.contains(t)));
        for t in &ma {
            prop_assert!(ka.contains(t));
        }
    }

    #[test]
    fn lattice_enumeration_matches_the_seed_order(terms in proptest::collection::vec(term(), 1..5)) {
        let key = TermKey::new(terms.clone());
        let canon = model(&terms);
        let got: Vec<Vec<String>> = key
            .all_subsets_desc()
            .iter()
            .map(|k| k.terms().iter().map(|s| s.to_string()).collect())
            .collect();
        prop_assert_eq!(got, model_subsets_desc(&canon));
        // Per-size enumeration agrees too.
        for size in 1..=canon.len() {
            let level: Vec<String> = key.subsets_of_size(size).iter().map(|k| k.canonical()).collect();
            prop_assert!(level.windows(2).all(|w| w[0] < w[1]), "sorted, distinct: {level:?}");
        }
    }

    #[test]
    fn expansion_matches_the_model(terms in term_vec(), extra in term()) {
        let key = TermKey::new(terms.clone());
        let expanded = key.expand(&extra);
        let canon = model(&terms);
        if canon.contains(&extra) {
            prop_assert!(expanded.is_none());
        } else {
            let mut with = canon.clone();
            with.push(extra.clone());
            let grown = expanded.expect("new term expands");
            prop_assert_eq!(grown.terms(), model(&with));
            prop_assert_eq!(grown.ring_id(), RingId::hash_str(&model(&with).join("+")));
            // Id-based expansion is the same operation.
            prop_assert_eq!(key.expand_id(TermId::intern(&extra)).expect("same"), grown);
        }
    }

    #[test]
    fn parents_match_the_model(terms in term_vec()) {
        let key = TermKey::new(terms.clone());
        let canon = model(&terms);
        let parents = key.parents();
        if canon.len() <= 1 {
            prop_assert!(parents.is_empty());
        } else {
            prop_assert_eq!(parents.len(), canon.len());
            for (skip, parent) in parents.iter().enumerate() {
                let expect: Vec<String> = canon
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, t)| t.clone())
                    .collect();
                prop_assert_eq!(parent.terms(), expect);
            }
        }
    }

    #[test]
    fn id_and_string_construction_agree(terms in term_vec()) {
        let from_strings = TermKey::new(terms.clone());
        let ids: Vec<TermId> = terms.iter().map(|t| TermId::intern(t)).collect();
        let from_ids = TermKey::from_term_ids(ids);
        prop_assert_eq!(&from_ids, &from_strings);
        prop_assert_eq!(from_ids.ring_id(), from_strings.ring_id());
        prop_assert_eq!(from_ids.cmp(&from_strings), std::cmp::Ordering::Equal);
    }

    #[test]
    fn serde_preserves_the_string_wire_shape(terms in term_vec()) {
        use serde::{Deserialize, Serialize, Value};
        let key = TermKey::new(terms.clone());
        // The wire form is `{ "terms": [...strings...] }`, as the seed derived.
        let value = key.to_value();
        let Value::Obj(fields) = &value else { panic!("object form") };
        prop_assert_eq!(fields.len(), 1);
        prop_assert_eq!(fields[0].0.as_str(), "terms");
        let back = TermKey::from_value(&value).expect("round trip");
        prop_assert_eq!(&back, &key);
        prop_assert_eq!(back.ring_id(), key.ring_id());
    }
}
