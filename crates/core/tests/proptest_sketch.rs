//! Property tests for the per-key sketch subsystem: the pinned wire frame
//! round-trips exactly for every kind combination, a sketch's floor-pruning
//! verdict always agrees with what the posting-list codec would actually ship,
//! the synthesized pruned response is byte-for-byte what the wire would have
//! carried, and the Bloom membership section never produces false negatives.

use alvisp2p_core::codec::{decode_list, encode_list};
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_core::sketch::{KeySketch, SketchKinds};
use alvisp2p_textindex::DocId;
use proptest::prelude::*;

fn scored_refs(max: usize) -> impl Strategy<Value = Vec<ScoredRef>> {
    proptest::collection::vec(
        (0u32..40, 0u32..500, 0u64..4_000).prop_map(|(peer, local, s)| ScoredRef {
            doc: DocId::new(peer, local),
            score: s as f64 / 16.0,
        }),
        0..max,
    )
}

fn kinds() -> impl Strategy<Value = SketchKinds> {
    (any::<bool>(), any::<bool>())
        .prop_map(|(scores, membership)| SketchKinds { scores, membership })
}

proptest! {
    /// `decode(encode(sketch))` is the identity for every postings shape and
    /// kind combination, and `encoded_len` is the exact frame length.
    #[test]
    fn wire_frame_round_trips_exactly(
        refs in scored_refs(80),
        capacity in 1usize..64,
        version in 0u64..1_000,
        kinds in kinds(),
    ) {
        let list = TruncatedPostingList::from_refs(refs, capacity);
        let sketch = KeySketch::build(version, &list, kinds);
        let frame = sketch.encode();
        prop_assert_eq!(frame.len(), sketch.encoded_len());
        let back = KeySketch::decode(&frame).unwrap();
        prop_assert_eq!(back, sketch);
    }

    /// Whenever the sketch claims a floor elides everything, the codec agrees:
    /// the floored encoding keeps zero entries, and the synthesized pruned
    /// response matches the decoded wire frame field for field — same length
    /// in bytes, same `full_df`, capacity and truncation status. The sketch
    /// never prunes a probe whose response would have carried an entry.
    #[test]
    fn floor_pruning_always_agrees_with_the_codec(
        refs in scored_refs(80),
        capacity in 1usize..64,
        floor_per_mille in 0u32..1_500,
    ) {
        let list = TruncatedPostingList::from_refs(refs, capacity);
        let sketch = KeySketch::build(3, &list, SketchKinds::all());
        let hi = list.best_score().unwrap_or(0.0);
        let floor = hi * f64::from(floor_per_mille) / 1_000.0 + 1e-9;
        let frame = encode_list(&list, Some(floor));
        let shipped = decode_list(&frame).unwrap();
        if sketch.prunes_all_below(Some(floor)) {
            prop_assert_eq!(shipped.len(), 0,
                "sketch pruned a probe whose response carried {} entries", shipped.len());
            let synthesized = sketch.pruned_response();
            prop_assert_eq!(frame.len(), sketch.pruned_response_len());
            prop_assert_eq!(synthesized.len(), shipped.len());
            prop_assert_eq!(synthesized.full_df(), shipped.full_df());
            prop_assert_eq!(synthesized.capacity(), shipped.capacity());
            prop_assert_eq!(synthesized.is_truncated(), shipped.is_truncated());
        }
        // The converse need not hold (the f32 max is widened upward), but the
        // slack is at most one ULP: a floor above the widened max must prune.
        if !list.refs().is_empty() {
            let above = sketch.scores().map(|_| f64::from(hi as f32) * 1.01 + 1.0);
            if let Some(above) = above {
                prop_assert!(sketch.prunes_all_below(Some(above)));
            }
        }
    }

    /// No false negatives: a complete sketch sees every document its list
    /// holds, so two complete sketches sharing at least one document can never
    /// be proven disjoint.
    #[test]
    fn membership_never_denies_a_shared_document(
        refs in scored_refs(40),
        split in 0usize..40,
    ) {
        // Capacity above the ref count keeps both lists complete (untruncated).
        let a_list = TruncatedPostingList::from_refs(refs.clone(), 64);
        let split = split.min(refs.len());
        let b_list = TruncatedPostingList::from_refs(refs[..split].to_vec(), 64);
        prop_assume!(!b_list.refs().is_empty());
        let a = KeySketch::build(0, &a_list, SketchKinds::all());
        let b = KeySketch::build(0, &b_list, SketchKinds::all());
        prop_assert!(a.is_complete() && b.is_complete());
        // b's documents are a subset of a's, so the intersection is non-empty.
        prop_assert!(a.may_intersect(&b),
            "disjointness proof fired on sets sharing {} documents", b_list.len());
        // The intersection estimate stays within its clamp.
        if let Some(est) = a.estimate_intersection(&b) {
            prop_assert!(est >= 0.0);
            prop_assert!(est <= a_list.len().min(b_list.len()) as f64 + 1e-9);
        }
    }

    /// Version gating is exact: a rebuilt sketch at a new version never passes
    /// for the old one.
    #[test]
    fn versions_are_preserved_through_the_wire(
        refs in scored_refs(30),
        version in 0u64..u64::MAX / 2,
    ) {
        let list = TruncatedPostingList::from_refs(refs, 32);
        let sketch = KeySketch::build(version, &list, SketchKinds::all());
        let back = KeySketch::decode(&sketch.encode()).unwrap();
        prop_assert_eq!(back.version(), version);
    }
}
