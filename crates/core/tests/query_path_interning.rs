//! The distributed query path must never grow the process-wide leaky
//! interner: a term no document ever published cannot match anything, so the
//! query pipeline resolves terms lookup-only (`intern::try_term_id`) and drops
//! never-seen ones. This closes the ROADMAP exposure where an untrusted query
//! stream grew memory with every novel term.

use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::Hdk;
use alvisp2p_textindex::{demo_corpus, intern};

fn demo_network() -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::default())
        .seed(7)
        .documents(demo_corpus())
        .build_indexed()
        .expect("valid configuration")
}

#[test]
fn unseen_query_terms_do_not_grow_the_interner() {
    let mut net = demo_network();
    // Warm everything once (plans, ranking stats, analyzers).
    let warm = net.execute(&QueryRequest::new("peer retrieval")).unwrap();
    assert!(!warm.results.is_empty());

    let before = intern::interned_terms();
    // Repeated queries made of terms no document ever published: each would
    // previously have interned (and leaked) its novel terms.
    for i in 0..50 {
        let text = format!("zzyzxq{i} qwfpgjluy{i} vexatiousnonterm{i}");
        let response = net.execute(&QueryRequest::new(text)).unwrap();
        assert!(response.results.is_empty());
        assert_eq!(response.bytes, 0, "nothing to probe for unseen terms");
    }
    assert_eq!(
        intern::interned_terms(),
        before,
        "unseen-term queries must leave the interner untouched"
    );
    // Lookup-only resolution really is lookup-only.
    assert_eq!(intern::try_term_id("zzyzxq0"), None);
    assert_eq!(intern::resolve_existing("zzyzxq0"), None);
    assert_eq!(intern::try_term_id("zzyzxq0"), None, "try_term_id inserted");
}

#[test]
fn mixed_queries_behave_as_if_unseen_terms_were_absent() {
    let mut clean = demo_network();
    let mut mixed = demo_network();
    let clean_response = clean.execute(&QueryRequest::new("peer retrieval")).unwrap();

    let before = intern::interned_terms();
    let mixed_response = mixed
        .execute(&QueryRequest::new("peer zzneverpublishedzz retrieval"))
        .unwrap();
    assert_eq!(intern::interned_terms(), before);

    // The unseen term is dropped before key construction, so the query runs
    // as `peer retrieval`: identical results and identical lattice trace.
    let clean_docs: Vec<_> = clean_response.results.iter().map(|r| r.doc).collect();
    let mixed_docs: Vec<_> = mixed_response.results.iter().map(|r| r.doc).collect();
    assert_eq!(clean_docs, mixed_docs);
    assert_eq!(clean_response.trace.nodes, mixed_response.trace.nodes);
}
