//! The Alvis document digest.
//!
//! A *document digest* is an explicit, serialisable representation of the index of a
//! document collection: the list of document URLs and, for each document, the list of
//! its indexing terms with their positions. It is the interchange format that lets a
//! peer be associated with an arbitrary external local search engine (the paper's
//! example is a digital library running its own sophisticated indexer): the external
//! engine exports a digest, the peer re-imports it into its local index and starts the
//! distributed indexing process.
//!
//! The original format is XML; this reproduction uses JSON with the same structure
//! (documents → terms → positions), which keeps the digest human-inspectable.

use crate::analyze::{Analyzer, TermOccurrence};
use crate::doc::{DocId, Document, DocumentStore};
use crate::index::InvertedIndex;
use serde::{Deserialize, Serialize};

/// One indexing term of a digest document, with its word positions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestTerm {
    /// The normalized indexing term.
    pub term: String,
    /// Word positions at which the term occurs.
    pub positions: Vec<u32>,
}

/// One document entry of a digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestDocument {
    /// URL of the original document (at the external engine or hosting peer).
    pub url: String,
    /// Human-readable title.
    pub title: String,
    /// Indexing terms with positions.
    pub terms: Vec<DigestTerm>,
}

impl DigestDocument {
    /// Total number of term occurrences in this entry.
    pub fn occurrence_count(&self) -> usize {
        self.terms.iter().map(|t| t.positions.len()).sum()
    }

    /// Flattens the entry into analyzer-style term occurrences.
    pub fn to_occurrences(&self) -> Vec<TermOccurrence> {
        let mut occs: Vec<TermOccurrence> = self
            .terms
            .iter()
            .flat_map(|t| {
                t.positions.iter().map(|p| TermOccurrence {
                    term: t.term.clone(),
                    position: *p,
                })
            })
            .collect();
        occs.sort_by_key(|o| o.position);
        occs
    }
}

/// A digest of a whole document collection.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocumentDigest {
    /// Name of the collection (e.g. the digital library's identifier).
    pub collection: String,
    /// Document entries.
    pub documents: Vec<DigestDocument>,
}

impl DocumentDigest {
    /// Creates an empty digest for a named collection.
    pub fn new(collection: impl Into<String>) -> Self {
        DocumentDigest {
            collection: collection.into(),
            documents: Vec::new(),
        }
    }

    /// Builds a digest from a peer's published documents using the given analyzer
    /// (what a peer would transmit to make its collection globally searchable).
    pub fn from_collection(store: &DocumentStore, analyzer: &Analyzer) -> Self {
        let mut digest = DocumentDigest::new(format!("peer{}", store.peer()));
        for doc in store.iter() {
            digest.documents.push(digest_document(doc, analyzer));
        }
        digest
    }

    /// Number of documents described by the digest.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the digest describes no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Serialises the digest to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a digest from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Imports the digest into a peer's local inverted index, assigning fresh local
    /// document identifiers owned by `peer`. Returns the assigned identifiers in the
    /// order of the digest's documents.
    pub fn import_into(
        &self,
        index: &mut InvertedIndex,
        peer: u32,
        first_local: u32,
    ) -> Vec<DocId> {
        let mut ids = Vec::with_capacity(self.documents.len());
        for (i, entry) in self.documents.iter().enumerate() {
            let id = DocId::new(peer, first_local + i as u32);
            index.index_occurrences(id, &entry.to_occurrences());
            ids.push(id);
        }
        ids
    }
}

fn digest_document(doc: &Document, analyzer: &Analyzer) -> DigestDocument {
    let text = format!("{} {}", doc.title, doc.body);
    let occs = analyzer.analyze(&text);
    let mut terms: Vec<DigestTerm> = Vec::new();
    for occ in occs {
        match terms.iter_mut().find(|t| t.term == occ.term) {
            Some(t) => t.positions.push(occ.position),
            None => terms.push(DigestTerm {
                term: occ.term,
                positions: vec![occ.position],
            }),
        }
    }
    terms.sort_by(|a, b| a.term.cmp(&b.term));
    DigestDocument {
        url: doc.url.clone(),
        title: doc.title.clone(),
        terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> DocumentStore {
        let mut store = DocumentStore::new(2);
        store.publish("P2P Retrieval", "peer to peer retrieval of text documents");
        store.publish("Ranking", "bm25 ranking of retrieved documents");
        store
    }

    #[test]
    fn digest_from_collection_covers_all_documents() {
        let store = sample_store();
        let digest = DocumentDigest::from_collection(&store, &Analyzer::default());
        assert_eq!(digest.len(), 2);
        assert_eq!(digest.collection, "peer2");
        assert!(!digest.is_empty());
        let first = &digest.documents[0];
        assert!(first.terms.iter().any(|t| t.term == "retriev"));
        assert!(first.occurrence_count() >= 4);
    }

    #[test]
    fn json_round_trip_preserves_the_digest() {
        let store = sample_store();
        let digest = DocumentDigest::from_collection(&store, &Analyzer::default());
        let json = digest.to_json().unwrap();
        let back = DocumentDigest::from_json(&json).unwrap();
        assert_eq!(digest, back);
        assert!(json.contains("retriev"));
    }

    #[test]
    fn import_reproduces_the_original_index() {
        let store = sample_store();
        let analyzer = Analyzer::default();
        // Index built directly from the documents.
        let mut direct = InvertedIndex::default();
        for (i, doc) in store.iter().enumerate() {
            direct.index_text(
                DocId::new(9, i as u32),
                &format!("{} {}", doc.title, doc.body),
            );
        }
        // Index built by exporting and re-importing a digest (what an external engine
        // would do).
        let digest = DocumentDigest::from_collection(&store, &analyzer);
        let mut imported = InvertedIndex::default();
        let ids = digest.import_into(&mut imported, 9, 0);
        assert_eq!(ids.len(), 2);
        assert_eq!(imported.doc_count(), direct.doc_count());
        for term in ["retriev", "peer", "bm25", "rank"] {
            assert_eq!(imported.df(term), direct.df(term), "df mismatch for {term}");
        }
        assert_eq!(imported.avg_doc_len(), direct.avg_doc_len());
    }

    #[test]
    fn digest_occurrences_are_position_sorted() {
        let entry = DigestDocument {
            url: "u".into(),
            title: "t".into(),
            terms: vec![
                DigestTerm {
                    term: "b".into(),
                    positions: vec![3, 1],
                },
                DigestTerm {
                    term: "a".into(),
                    positions: vec![0, 2],
                },
            ],
        };
        let occs = entry.to_occurrences();
        let positions: Vec<u32> = occs.iter().map(|o| o.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_digest_round_trips() {
        let digest = DocumentDigest::new("empty");
        let json = digest.to_json().unwrap();
        let back = DocumentDigest::from_json(&json).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.collection, "empty");
    }
}
