//! Stopword filtering.
//!
//! Stopwords (extremely frequent function words) are removed before indexing. In the
//! AlvisP2P indexing strategy this matters twice: they would dominate the single-term
//! index with enormous posting lists, and they would explode the number of candidate
//! term combinations considered by the HDK key generator.

use std::collections::HashSet;

/// The default English stopword list (a compact variant of the SMART/Terrier lists).
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "s",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// A stopword filter.
#[derive(Clone, Debug)]
pub struct Stopwords {
    words: HashSet<String>,
}

impl Default for Stopwords {
    fn default() -> Self {
        Stopwords::english()
    }
}

impl Stopwords {
    /// The default English stopword list.
    pub fn english() -> Self {
        Stopwords {
            words: DEFAULT_STOPWORDS.iter().map(|w| (*w).to_string()).collect(),
        }
    }

    /// An empty stopword list (no filtering).
    pub fn none() -> Self {
        Stopwords {
            words: HashSet::new(),
        }
    }

    /// Builds a custom stopword list.
    pub fn from_words(words: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Stopwords {
            words: words.into_iter().map(Into::into).collect(),
        }
    }

    /// Whether `word` (already lowercased) is a stopword.
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Number of stopwords in the list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_list_contains_function_words() {
        let sw = Stopwords::english();
        for w in ["the", "and", "of", "is", "with"] {
            assert!(sw.contains(w), "{w} should be a stopword");
        }
        assert!(!sw.contains("database"));
        assert!(!sw.contains("retrieval"));
        assert_eq!(sw.len(), DEFAULT_STOPWORDS.len());
    }

    #[test]
    fn none_filters_nothing() {
        let sw = Stopwords::none();
        assert!(sw.is_empty());
        assert!(!sw.contains("the"));
    }

    #[test]
    fn custom_list() {
        let sw = Stopwords::from_words(["foo", "bar"]);
        assert!(sw.contains("foo"));
        assert!(sw.contains("bar"));
        assert!(!sw.contains("the"));
        assert_eq!(sw.len(), 2);
    }

    #[test]
    fn default_is_english() {
        assert!(Stopwords::default().contains("the"));
    }

    #[test]
    fn list_has_no_duplicates() {
        let set: HashSet<&str> = DEFAULT_STOPWORDS.iter().copied().collect();
        assert_eq!(set.len(), DEFAULT_STOPWORDS.len());
    }
}
