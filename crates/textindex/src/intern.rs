//! Process-wide term interning.
//!
//! Every layer of the system — the analyzer, the local inverted indexes, the
//! HDK/QDI key machinery and the DHT publish/probe hot paths — manipulates the
//! same (bounded) vocabulary of analyzed terms. Passing those terms around as
//! `String`s means every key construction, comparison and hash re-allocates and
//! re-reads the same bytes. This module maps each distinct analyzed term to a
//! dense [`TermId`] (`u32`) exactly once; everything downstream moves 4-byte
//! copies around instead.
//!
//! The interner is **global and append-only**: interned strings are leaked (via
//! `Box::leak`) so that [`TermId::as_str`] can hand out `&'static str` without
//! holding any lock or reference count. Memory use is bounded by the size of
//! the analyzed vocabulary, which the paper's own scalability argument already
//! requires to be bounded — the same trade-off production interners (e.g.
//! rustc's symbol table, `lasso`'s leaky variant) make.
//!
//! **Untrusted input.** The interner is leaky, so growth must be bounded by
//! the *published* vocabulary, never by what queries happen to mention. The
//! query pipeline therefore resolves terms through the lookup-only
//! [`try_term_id`] / [`resolve_existing`] entry points: a term that was never
//! published cannot match anything, so the query path drops it instead of
//! interning it, and an adversarial query stream of never-seen terms leaves
//! the interner untouched (asserted by `tests/query_path_interning.rs` in
//! `alvisp2p-core`). Only indexing-side paths — which process the bounded
//! analyzed vocabulary the paper's scalability argument already assumes —
//! intern new terms.
//!
//! Thread safety: id → term resolution is **lock-free** (the table is a spine
//! of write-once chunks, two atomic loads per resolve); term → id lookups take
//! a read lock on the Fx-hashed map; interning a *new* term takes the map
//! write lock once. After warm-up (corpus indexed, query vocabulary seen) the
//! write path is never taken again.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// FxHash (the rustc interner's hash): a multiply-rotate per 8-byte word.
/// Terms are short identifiers from a trusted source, so the weaker-but-fast
/// hash is the right trade-off — SipHash costs more than the whole remaining
/// intern lookup on this path.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(*b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.add_word(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// A dense identifier for one interned analyzed term.
///
/// `TermId`s are process-local: they are assigned in first-intern order and
/// must never be persisted or sent over a (real) wire — serialize the term
/// string instead (which is what [`crate::analyze::TermOccurrence`] and the
/// key serializers do).
///
/// The derived `Ord` is **numeric** (assignment order), not lexicographic;
/// canonical (string) ordering is the responsibility of the structures built
/// on top (e.g. `alvisp2p-core`'s `TermKey` stores its ids in canonical term
/// order). Use [`TermId::str_cmp`] for an explicit lexicographic comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// log2 of the ids per table chunk.
const CHUNK_SHIFT: usize = 12;
/// Ids per table chunk.
const CHUNK_LEN: usize = 1 << CHUNK_SHIFT;
/// Maximum number of chunks: bounds the vocabulary at 16M distinct terms.
const MAX_CHUNKS: usize = 1 << 12;

/// The id → term table: a fixed spine of lazily-allocated chunks whose slots
/// are write-once. Both levels are `OnceLock`s, so **resolution is lock-free**
/// — two atomic loads — while appends (serialized by the map's write lock)
/// initialize the chunk and set the slot.
///
/// Ordering: a slot is `set` (release) before the id is published through the
/// map write lock or an atomic `len` store, so any thread that legitimately
/// holds a `TermId` observes its slot initialized (acquire on `get`).
struct Table {
    chunks: [OnceLock<Box<[OnceLock<&'static str>; CHUNK_LEN]>>; MAX_CHUNKS],
    len: AtomicUsize,
}

impl Table {
    #[inline]
    fn resolve(&self, id: u32) -> &'static str {
        let chunk = id as usize >> CHUNK_SHIFT;
        let slot = id as usize & (CHUNK_LEN - 1);
        self.chunks[chunk]
            .get()
            .expect("TermId from a foreign process or forged")[slot]
            .get()
            .expect("TermId slot unset")
    }

    /// Appends a term (caller holds the map write lock, so appends are serial).
    fn push(&self, term: &'static str) -> u32 {
        let id = self.len.load(Ordering::Relaxed);
        assert!(id < CHUNK_LEN * MAX_CHUNKS, "interned vocabulary overflow");
        let chunk = self.chunks[id >> CHUNK_SHIFT]
            .get_or_init(|| Box::new([const { OnceLock::new() }; CHUNK_LEN]));
        chunk[id & (CHUNK_LEN - 1)]
            .set(term)
            .expect("append races are excluded by the map write lock");
        self.len.store(id + 1, Ordering::Release);
        u32::try_from(id).expect("bounded by CHUNK_LEN * MAX_CHUNKS")
    }
}

struct Interner {
    /// term → id. Keys are the same leaked strings the table holds.
    map: RwLock<HashMap<&'static str, u32, FxBuild>>,
    /// id → term, lock-free on the read side.
    table: Table,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let int = Interner {
            map: RwLock::new(HashMap::default()),
            table: Table {
                chunks: [const { OnceLock::new() }; MAX_CHUNKS],
                len: AtomicUsize::new(0),
            },
        };
        // Pre-intern the empty term as id 0 ([`TermId::EMPTY`]) so padding and
        // sentinel uses are valid from the start.
        let id = int.table.push("");
        int.map.write().expect("fresh lock").insert("", id);
        int
    })
}

/// A resolution session over the id → term table. Since resolution is
/// lock-free, this is a zero-sized token; it survives as an explicit handle so
/// batch call sites document their intent (and so a guard could return if the
/// storage strategy ever changes).
pub struct Resolver(());

impl Resolver {
    /// The interned term for `id` (two atomic loads, no locking).
    #[inline]
    pub fn resolve(&self, id: TermId) -> &'static str {
        interner().table.resolve(id.0)
    }
}

/// Opens a resolution session on the interner table.
pub fn resolver() -> Resolver {
    Resolver(())
}

impl TermId {
    /// The pre-interned empty term (id 0). Exists from interner construction,
    /// so it can be used as padding without ever taking a lock.
    pub const EMPTY: TermId = TermId(0);

    /// Interns `term`, returning its stable identifier. The first intern of a
    /// term allocates (and leaks) one copy of it; every subsequent call is a
    /// read-locked hash lookup with no allocation.
    pub fn intern(term: &str) -> TermId {
        Self::intern_with_str(term).0
    }

    /// Like [`TermId::intern`] but also returns the canonical `&'static str`,
    /// saving the resolve round-trip on construction-heavy paths.
    pub fn intern_with_str(term: &str) -> (TermId, &'static str) {
        let int = interner();
        if let Some((&s, &id)) = int
            .map
            .read()
            .expect("interner map poisoned")
            .get_key_value(term)
        {
            return (TermId(id), s);
        }
        let mut map = int.map.write().expect("interner map poisoned");
        // Double-check: another thread may have interned it meanwhile.
        if let Some((&s, &id)) = map.get_key_value(term) {
            return (TermId(id), s);
        }
        let leaked: &'static str = Box::leak(term.to_owned().into_boxed_str());
        let id = int.table.push(leaked);
        map.insert(leaked, id);
        (TermId(id), leaked)
    }

    /// The identifier of an already-interned term, or `None` if the term has
    /// never been seen. Never allocates.
    pub fn get(term: &str) -> Option<TermId> {
        interner()
            .map
            .read()
            .expect("interner map poisoned")
            .get(term)
            .copied()
            .map(TermId)
    }

    /// The interned term. Lock-free (two atomic loads) and never allocates —
    /// the string was leaked at intern time, so no guard or reference count
    /// escapes.
    #[inline]
    pub fn as_str(self) -> &'static str {
        interner().table.resolve(self.0)
    }

    /// The raw dense index (assignment order). Useful for side tables indexed
    /// by term.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Lexicographic comparison of the underlying terms (as opposed to the
    /// derived numeric `Ord`).
    pub fn str_cmp(self, other: TermId) -> std::cmp::Ordering {
        if self == other {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl std::fmt::Debug for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TermId({} {:?})", self.0, self.as_str())
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Number of distinct terms interned so far (process-wide).
pub fn interned_terms() -> usize {
    interner().table.len.load(Ordering::Acquire)
}

/// Lookup-only resolution: the id of an already-interned term, or `None`.
///
/// This is the entry point for **untrusted input paths** (the query pipeline):
/// it never inserts, so a stream of never-seen terms cannot grow the leaky
/// interner. A term that was never interned was never published by any
/// document, so on the query side `None` simply means "cannot match".
/// (Free-function alias of [`TermId::get`], named for discoverability from the
/// ROADMAP item it resolves.)
pub fn try_term_id(term: &str) -> Option<TermId> {
    TermId::get(term)
}

/// Lookup-only variant of resolution by string: the canonical `&'static str`
/// of an already-interned term, or `None`. Never allocates, never inserts.
pub fn resolve_existing(term: &str) -> Option<&'static str> {
    interner()
        .map
        .read()
        .expect("interner map poisoned")
        .get_key_value(term)
        .map(|(&s, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a1 = TermId::intern("intern-test-alpha");
        let a2 = TermId::intern("intern-test-alpha");
        let b = TermId::intern("intern-test-beta");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.as_str(), "intern-test-alpha");
        assert_eq!(b.as_str(), "intern-test-beta");
    }

    #[test]
    fn get_only_finds_interned_terms() {
        assert_eq!(TermId::get("intern-test-never-interned-zzz"), None);
        let id = TermId::intern("intern-test-gamma");
        assert_eq!(TermId::get("intern-test-gamma"), Some(id));
    }

    #[test]
    fn intern_with_str_returns_the_canonical_string() {
        let (id, s) = TermId::intern_with_str("intern-test-delta");
        assert_eq!(s, "intern-test-delta");
        assert_eq!(id.as_str(), s);
        // The canonical string is pointer-stable across lookups.
        let (_, s2) = TermId::intern_with_str("intern-test-delta");
        assert!(std::ptr::eq(s, s2));
    }

    #[test]
    fn str_cmp_is_lexicographic() {
        // Intern in reverse lexicographic order so numeric and string order differ.
        let z = TermId::intern("intern-test-z");
        let a = TermId::intern("intern-test-a");
        assert_eq!(z.str_cmp(a), std::cmp::Ordering::Greater);
        assert_eq!(a.str_cmp(z), std::cmp::Ordering::Less);
        assert_eq!(a.str_cmp(a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn resolver_session_matches_per_call_resolution() {
        let ids: Vec<TermId> = ["intern-test-r1", "intern-test-r2", "intern-test-r3"]
            .iter()
            .map(|t| TermId::intern(t))
            .collect();
        // Resolve through per-call lookups first: recursive read-locking inside
        // the session is not guaranteed by std's RwLock.
        let expected: Vec<&'static str> = ids.iter().map(|id| id.as_str()).collect();
        let r = resolver();
        for (id, want) in ids.iter().zip(expected) {
            assert_eq!(r.resolve(*id), want);
        }
    }

    #[test]
    fn interned_count_grows() {
        let before = interned_terms();
        TermId::intern("intern-test-count-unique-term");
        assert!(interned_terms() > 0);
        assert!(interned_terms() >= before);
    }

    #[test]
    fn display_and_debug_render_the_term() {
        let id = TermId::intern("intern-test-disp");
        assert_eq!(format!("{id}"), "intern-test-disp");
        assert!(format!("{id:?}").contains("intern-test-disp"));
    }
}
