//! Synthetic corpora.
//!
//! The published AlvisP2P evaluations ran on Web and Wikipedia-style collections that
//! are not redistributable. What the scalability results depend on, however, is not
//! the exact documents but their *distributional* properties: a Zipfian vocabulary,
//! topical co-occurrence of terms, and realistic document-length variation. The
//! [`CorpusGenerator`] produces seeded collections with exactly those properties, so
//! every experiment in `EXPERIMENTS.md` is reproducible bit-for-bit.
//!
//! A small hand-written [`demo_corpus`] about P2P information retrieval is also
//! provided for the examples and quick tests.

use alvisp2p_netsim::{SimRng, Zipf};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic corpus generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Vocabulary size (number of distinct pseudo-words).
    pub vocab_size: usize,
    /// Zipf exponent of the global term distribution (≈1.0 for natural language).
    pub zipf_exponent: f64,
    /// Mean document length in words.
    pub doc_len_mean: usize,
    /// Documents lengths are drawn uniformly from `mean ± spread` (clamped to ≥ 8).
    pub doc_len_spread: usize,
    /// Number of latent topics; each document mixes one topic with background terms.
    pub num_topics: usize,
    /// Number of vocabulary terms associated with each topic.
    pub topic_vocab: usize,
    /// Probability that a word is drawn from the document's topic rather than the
    /// global background distribution.
    pub topic_mix: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_docs: 1_000,
            vocab_size: 5_000,
            zipf_exponent: 1.0,
            doc_len_mean: 120,
            doc_len_spread: 60,
            num_topics: 25,
            topic_vocab: 80,
            topic_mix: 0.5,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        CorpusConfig {
            num_docs: 60,
            vocab_size: 400,
            doc_len_mean: 40,
            doc_len_spread: 20,
            num_topics: 6,
            topic_vocab: 30,
            ..Default::default()
        }
    }
}

/// A generated document (title, body and the latent topic it was drawn from).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratedDoc {
    /// Synthetic title.
    pub title: String,
    /// Synthetic body text.
    pub body: String,
    /// Index of the latent topic the document belongs to.
    pub topic: usize,
}

/// A generated collection: the documents plus the vocabulary and topic structure that
/// produced them (the query-log generator reuses the latter so that queries have
/// matching documents).
#[derive(Clone, Debug)]
pub struct SyntheticCorpus {
    /// The generated documents.
    pub docs: Vec<GeneratedDoc>,
    /// The full vocabulary, most frequent first.
    pub vocabulary: Vec<String>,
    /// For each topic, the indices (into `vocabulary`) of its characteristic terms.
    pub topics: Vec<Vec<usize>>,
    /// The configuration used.
    pub config: CorpusConfig,
}

impl SyntheticCorpus {
    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Generator of synthetic document collections.
#[derive(Clone, Debug)]
pub struct CorpusGenerator {
    config: CorpusConfig,
    seed: u64,
}

impl CorpusGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: CorpusConfig, seed: u64) -> Self {
        CorpusGenerator { config, seed }
    }

    /// Generates the corpus.
    pub fn generate(&self) -> SyntheticCorpus {
        let cfg = &self.config;
        let rng = SimRng::new(self.seed).derive(0xC0);
        let vocabulary = build_vocabulary(cfg.vocab_size);

        // Topics: each topic owns a random subset of mid-frequency vocabulary terms
        // (skipping the extreme head, which acts as background/stopword-like noise).
        let head = (cfg.vocab_size / 50).max(8).min(cfg.vocab_size);
        let mut topics = Vec::with_capacity(cfg.num_topics);
        for t in 0..cfg.num_topics {
            let mut topic_rng = rng.derive(1000 + t as u64);
            let candidates: Vec<usize> = (head..cfg.vocab_size).collect();
            let picked =
                topic_rng.sample_indices(candidates.len(), cfg.topic_vocab.min(candidates.len()));
            topics.push(
                picked
                    .into_iter()
                    .map(|i| candidates[i])
                    .collect::<Vec<usize>>(),
            );
        }
        if topics.is_empty() {
            topics.push((0..cfg.vocab_size.min(cfg.topic_vocab)).collect());
        }

        let global = Zipf::new(cfg.vocab_size, cfg.zipf_exponent);
        // Within a topic, terms are also skewed (some terms are more characteristic).
        let within_topic = Zipf::new(cfg.topic_vocab.max(1), 0.8);

        let mut docs = Vec::with_capacity(cfg.num_docs);
        for d in 0..cfg.num_docs {
            let mut doc_rng = rng.derive(2000 + d as u64);
            let topic = doc_rng.gen_range(0..topics.len());
            let lo = cfg.doc_len_mean.saturating_sub(cfg.doc_len_spread).max(8);
            let hi = cfg.doc_len_mean + cfg.doc_len_spread;
            let len = doc_rng.gen_range(lo..=hi);
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                let word_idx = if doc_rng.gen_bool(cfg.topic_mix) && !topics[topic].is_empty() {
                    let r = within_topic.sample(&mut doc_rng) % topics[topic].len();
                    topics[topic][r]
                } else {
                    global.sample(&mut doc_rng)
                };
                words.push(vocabulary[word_idx].as_str());
            }
            let title_terms: Vec<&str> = topics[topic]
                .iter()
                .take(3)
                .map(|i| vocabulary[*i].as_str())
                .collect();
            docs.push(GeneratedDoc {
                title: format!("doc{d} {}", title_terms.join(" ")),
                body: words.join(" "),
                topic,
            });
        }

        SyntheticCorpus {
            docs,
            vocabulary,
            topics,
            config: cfg.clone(),
        }
    }
}

/// Builds a deterministic pseudo-word vocabulary of the given size, most frequent rank
/// first. Words are pronounceable consonant-vowel syllable sequences ("pa", "tiro",
/// "kelusa", …) so they survive the analysis pipeline unchanged in interesting ways
/// (some are stemmed, none are stopwords).
pub fn build_vocabulary(size: usize) -> Vec<String> {
    const CONSONANTS: [&str; 14] = [
        "p", "t", "k", "s", "m", "n", "l", "r", "d", "b", "g", "f", "v", "z",
    ];
    const VOWELS: [&str; 5] = ["a", "e", "i", "o", "u"];
    let mut words = Vec::with_capacity(size);
    let mut n = 0usize;
    'outer: for syllables in 1..=4usize {
        // Enumerate all syllable sequences of this length deterministically.
        let per_syllable = CONSONANTS.len() * VOWELS.len();
        let total = per_syllable.pow(syllables as u32);
        for i in 0..total {
            let mut word = String::new();
            let mut x = i;
            for _ in 0..syllables {
                let c = CONSONANTS[x % CONSONANTS.len()];
                x /= CONSONANTS.len();
                let v = VOWELS[x % VOWELS.len()];
                x /= VOWELS.len();
                word.push_str(c);
                word.push_str(v);
            }
            words.push(word);
            n += 1;
            if n >= size {
                break 'outer;
            }
        }
    }
    words.truncate(size);
    words
}

/// A small hand-written corpus about P2P information retrieval, used by the examples
/// and quick-start documentation.
pub fn demo_corpus() -> Vec<(String, String)> {
    let docs: [(&str, &str); 12] = [
        (
            "Scalable peer-to-peer text retrieval",
            "A peer to peer network can index a global document collection by storing \
             posting lists for carefully chosen term combinations in a distributed hash \
             table. Truncated posting lists keep the bandwidth consumption bounded.",
        ),
        (
            "Highly discriminative keys",
            "Highly discriminative keys are term combinations that appear in few documents. \
             When a posting list grows beyond the maximum size, the indexing peer generates \
             expansions of the key with additional terms to keep posting lists short.",
        ),
        (
            "Query driven indexing",
            "Query driven indexing observes the popularity of queries and indexes only \
             frequently queried term combinations. Obsolete keys are removed when their \
             popularity decays, keeping the distributed index adaptive.",
        ),
        (
            "Distributed hash tables",
            "A distributed hash table assigns every key to a responsible peer. Routing \
             tables of logarithmic size allow a lookup to reach the responsible peer in a \
             logarithmic number of hops even when the identifier space is skewed.",
        ),
        (
            "Congestion control for structured overlays",
            "Popular keys concentrate request load on few peers. A congestion control \
             mechanism with adaptive windows prevents congestion collapse and keeps the \
             goodput of the overlay high under heavy retrieval load.",
        ),
        (
            "BM25 ranking with global statistics",
            "The ranking layer computes BM25 scores from global document frequencies, \
             average document length and term frequencies that are stored in the peer to \
             peer network.",
        ),
        (
            "Digital libraries in federated search",
            "A digital library can process its local documents with a specialized engine, \
             export a document digest, and make the collection searchable through the \
             global peer to peer index while keeping access control at the library.",
        ),
        (
            "Posting list intersection costs",
            "Retrieval with a single term index requires shipping long posting lists \
             between peers so that the querying peer can intersect them. For frequent \
             terms the transferred volume grows with the collection and does not scale.",
        ),
        (
            "Web search engines",
            "Centralized web search engines crawl the web, build an inverted index in a \
             data center and answer keyword queries with ranked result lists and snippets.",
        ),
        (
            "Multimedia publishing with descriptions",
            "Audio and video files can be published by indexing an XML description that \
             contains the original URL and a textual summary of the multimedia content.",
        ),
        (
            "Access rights for shared documents",
            "A document owner can keep a document private, protect it with a username and \
             password, or make it freely accessible while it remains stored at the owning \
             peer.",
        ),
        (
            "Query lattice processing",
            "To answer a multi keyword query the querying peer explores the lattice of \
             term combinations in decreasing size order, retrieves truncated posting lists \
             for indexed keys and merges them into a final ranked result.",
        ),
    ];
    docs.iter()
        .map(|(t, b)| ((*t).to_string(), (*b).to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vocabulary_is_deterministic_distinct_and_sized() {
        let v1 = build_vocabulary(1000);
        let v2 = build_vocabulary(1000);
        assert_eq!(v1, v2);
        assert_eq!(v1.len(), 1000);
        let set: HashSet<&String> = v1.iter().collect();
        assert_eq!(set.len(), 1000, "vocabulary has duplicates");
        assert!(v1.iter().all(|w| w.len() >= 2 && w.len() <= 10));
    }

    #[test]
    fn vocabulary_scales_to_large_sizes() {
        let v = build_vocabulary(60_000);
        assert_eq!(v.len(), 60_000);
        let set: HashSet<&String> = v.iter().collect();
        assert_eq!(set.len(), 60_000);
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let cfg = CorpusConfig::tiny();
        let a = CorpusGenerator::new(cfg.clone(), 7).generate();
        let b = CorpusGenerator::new(cfg, 7).generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.docs[0].body, b.docs[0].body);
        assert_eq!(a.docs[a.len() - 1].body, b.docs[b.len() - 1].body);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = CorpusConfig::tiny();
        let a = CorpusGenerator::new(cfg.clone(), 1).generate();
        let b = CorpusGenerator::new(cfg, 2).generate();
        assert_ne!(a.docs[0].body, b.docs[0].body);
    }

    #[test]
    fn documents_respect_length_bounds() {
        let cfg = CorpusConfig::tiny();
        let corpus = CorpusGenerator::new(cfg.clone(), 3).generate();
        assert_eq!(corpus.len(), cfg.num_docs);
        for d in &corpus.docs {
            let words = d.body.split_whitespace().count();
            assert!(words >= cfg.doc_len_mean - cfg.doc_len_spread || words >= 8);
            assert!(words <= cfg.doc_len_mean + cfg.doc_len_spread);
            assert!(d.topic < cfg.num_topics);
        }
    }

    #[test]
    fn term_frequencies_are_skewed() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(), 5).generate();
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for d in &corpus.docs {
            for w in d.body.split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf-like: the most frequent term occurs far more often than the median term.
        let median = freqs[freqs.len() / 2];
        assert!(freqs[0] >= median * 5, "head {} median {median}", freqs[0]);
    }

    #[test]
    fn topical_cooccurrence_is_present() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny(), 9).generate();
        // Documents of the same topic should share more vocabulary than documents of
        // different topics (on average).
        let doc_terms: Vec<HashSet<&str>> = corpus
            .docs
            .iter()
            .map(|d| d.body.split_whitespace().collect())
            .collect();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..corpus.len() {
            for j in (i + 1)..corpus.len().min(i + 20) {
                let overlap = doc_terms[i].intersection(&doc_terms[j]).count();
                if corpus.docs[i].topic == corpus.docs[j].topic {
                    same.push(overlap);
                } else {
                    diff.push(overlap);
                }
            }
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&same) > mean(&diff),
            "same-topic overlap {} vs cross-topic {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn demo_corpus_is_nonempty_and_on_topic() {
        let docs = demo_corpus();
        assert!(docs.len() >= 10);
        assert!(docs.iter().any(|(t, _)| t.to_lowercase().contains("peer")));
        for (title, body) in &docs {
            assert!(!title.is_empty());
            assert!(body.split_whitespace().count() > 10);
        }
    }
}
