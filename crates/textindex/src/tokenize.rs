//! Tokenization.
//!
//! The tokenizer splits raw text into lowercase word tokens. It is deliberately
//! simple and deterministic — alphanumeric runs are tokens, everything else is a
//! separator — which is the behaviour the AlvisP2P prototype inherited from its
//! Terrier-based local indexer for plain text documents.

/// A token extracted from a text, together with its word position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The (lowercased) token text.
    pub text: String,
    /// Zero-based word position in the source text.
    pub position: u32,
}

/// Splits `text` into lowercase alphanumeric tokens with positions.
///
/// Tokens longer than [`MAX_TOKEN_LEN`] characters are truncated (protecting the index
/// against pathological inputs such as base64 blobs), and purely numeric tokens longer
/// than 16 digits are dropped.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut position = 0u32;
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        // Lowercasing can expand one character into several, including combining
        // marks that are not themselves alphanumeric (e.g. 'İ' → "i\u{307}");
        // drop those so tokens stay purely alphanumeric.
        let lowered: String = raw
            .chars()
            .take(MAX_TOKEN_LEN)
            .flat_map(char::to_lowercase)
            .filter(|c| c.is_alphanumeric())
            .collect();
        if lowered.is_empty() {
            continue;
        }
        if lowered.len() > 16 && lowered.chars().all(|c| c.is_ascii_digit()) {
            // Skip long digit strings but still consume a position so phrase distances
            // stay meaningful.
            position += 1;
            continue;
        }
        tokens.push(Token {
            text: lowered,
            position,
        });
        position += 1;
    }
    tokens
}

/// Maximum number of characters kept per token.
pub const MAX_TOKEN_LEN: usize = 64;

/// Convenience helper returning only the token strings.
pub fn tokenize_terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric_and_lowercases() {
        let toks = tokenize_terms("Hello, World! P2P-networks are FUN.");
        assert_eq!(
            toks,
            vec!["hello", "world", "p2p", "networks", "are", "fun"]
        );
    }

    #[test]
    fn positions_are_sequential() {
        let toks = tokenize("alpha beta  gamma");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 1);
        assert_eq!(toks[2].position, 2);
    }

    #[test]
    fn empty_and_punctuation_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... !!! ---").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn unicode_text_is_handled() {
        let toks = tokenize_terms("Écoles Fédérales de Zürich");
        assert_eq!(toks, vec!["écoles", "fédérales", "de", "zürich"]);
    }

    #[test]
    fn digits_are_tokens_but_long_numbers_are_dropped() {
        let toks = tokenize_terms("vldb 2008 id 12345678901234567890 end");
        assert_eq!(toks, vec!["vldb", "2008", "id", "end"]);
    }

    #[test]
    fn very_long_tokens_are_truncated() {
        let long = "a".repeat(500);
        let toks = tokenize(&long);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text.len(), MAX_TOKEN_LEN);
    }

    #[test]
    fn mixed_alphanumerics_stay_joined() {
        assert_eq!(
            tokenize_terms("bm25 top10 x86"),
            vec!["bm25", "top10", "x86"]
        );
    }
}
