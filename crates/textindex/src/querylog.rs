//! Query-log generation.
//!
//! The Query-Driven Indexing strategy depends on realistic query *popularity*
//! statistics: a small set of queries accounts for most of the load (Zipf), queries
//! contain 1–4 terms, and popular queries change over time. The [`QueryLogGenerator`]
//! produces such logs against a [`SyntheticCorpus`] so that queries actually have
//! matching documents, and can inject a popularity *drift* halfway through the log to
//! exercise QDI's index-eviction mechanism (experiment E7).

use crate::corpus::SyntheticCorpus;
use alvisp2p_netsim::{SimRng, Zipf};
use serde::{Deserialize, Serialize};

/// A single query: its raw text and the position it occupies in the log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedQuery {
    /// Raw query text (space-separated terms, unanalyzed).
    pub text: String,
    /// Identifier of the distinct query this instance was sampled from.
    pub query_id: usize,
    /// Position in the log (0-based).
    pub sequence: usize,
}

/// Configuration of the query-log generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryLogConfig {
    /// Total number of query instances in the log.
    pub num_queries: usize,
    /// Number of distinct queries the instances are sampled from.
    pub distinct_queries: usize,
    /// Zipf exponent of query popularity (≈0.8–1.0 for web logs).
    pub popularity_exponent: f64,
    /// Minimum number of terms per query.
    pub min_terms: usize,
    /// Maximum number of terms per query.
    pub max_terms: usize,
    /// If `true`, the popularity ranking is rotated halfway through the log so that
    /// previously popular queries become rare and vice versa (tests QDI adaptivity).
    pub popularity_drift: bool,
    /// When `Some(df)`, query terms are drawn only from words appearing in more
    /// than `df` documents — the globally *frequent* terms in HDK's sense. Such a
    /// head-term log concentrates the workload on the long posting lists that
    /// multi-term keys exist to shorten.
    pub min_term_df: Option<usize>,
    /// When `Some(w)` (meaningful together with `min_term_df`), the terms of a
    /// multi-term query must co-occur within `w` token positions in the sampled
    /// document — the same spread test as the HDK proximity filter, so the
    /// query's own multi-term key is guaranteed a generating document.
    pub cooccurrence_window: Option<u32>,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        QueryLogConfig {
            num_queries: 2_000,
            distinct_queries: 300,
            popularity_exponent: 0.9,
            min_terms: 2,
            max_terms: 3,
            popularity_drift: false,
            min_term_df: None,
            cooccurrence_window: None,
        }
    }
}

impl QueryLogConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        QueryLogConfig {
            num_queries: 200,
            distinct_queries: 40,
            ..Default::default()
        }
    }
}

/// A generated query log.
#[derive(Clone, Debug)]
pub struct QueryLog {
    /// The query instances in log order.
    pub queries: Vec<LoggedQuery>,
    /// The distinct query strings, indexed by `query_id`.
    pub distinct: Vec<String>,
    /// The configuration used.
    pub config: QueryLogConfig,
}

impl QueryLog {
    /// Number of query instances.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The number of instances of each distinct query (indexed by `query_id`).
    pub fn popularity_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.distinct.len()];
        for q in &self.queries {
            hist[q.query_id] += 1;
        }
        hist
    }
}

/// Generator of query logs over a synthetic corpus.
#[derive(Clone, Debug)]
pub struct QueryLogGenerator {
    config: QueryLogConfig,
    seed: u64,
}

impl QueryLogGenerator {
    /// Creates a generator.
    pub fn new(config: QueryLogConfig, seed: u64) -> Self {
        QueryLogGenerator { config, seed }
    }

    /// Generates a query log whose queries are built from terms that co-occur in
    /// corpus documents (so multi-term queries have at least one matching document).
    pub fn generate(&self, corpus: &SyntheticCorpus) -> QueryLog {
        let cfg = &self.config;
        let mut rng = SimRng::new(self.seed).derive(0x9E);

        // Head-term mode: the pool of words frequent enough (document frequency
        // above `min_term_df`) to qualify as query terms.
        let frequent: Option<std::collections::HashSet<&str>> = cfg.min_term_df.map(|min_df| {
            let mut df: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
            for doc in &corpus.docs {
                let words: std::collections::HashSet<&str> = doc.body.split_whitespace().collect();
                for w in words {
                    *df.entry(w).or_insert(0) += 1;
                }
            }
            df.into_iter()
                .filter(|(w, n)| *n > min_df && w.len() >= 3)
                .map(|(w, _)| w)
                .collect()
        });

        // Build the pool of distinct queries by sampling documents and picking a few
        // of their (non-head) terms.
        let mut distinct = Vec::with_capacity(cfg.distinct_queries);
        let mut guard = 0usize;
        while distinct.len() < cfg.distinct_queries && guard < cfg.distinct_queries * 50 {
            guard += 1;
            let doc = &corpus.docs[rng.gen_range(0..corpus.docs.len())];
            let words: Vec<&str> = doc.body.split_whitespace().collect();
            if words.len() < cfg.max_terms {
                continue;
            }
            let n_terms = rng.gen_range(cfg.min_terms..=cfg.max_terms);
            let mut picked: Vec<&str> = Vec::new();
            if let Some(frequent) = &frequent {
                // Head-term mode: anchor on a frequent word and collect distinct
                // frequent words within the co-occurrence window after it, so the
                // picked terms' spread stays within the window.
                let anchors: Vec<usize> = words
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| frequent.contains(**w))
                    .map(|(i, _)| i)
                    .collect();
                if anchors.len() < n_terms {
                    continue;
                }
                let anchor = anchors[rng.gen_range(0..anchors.len())];
                picked.push(words[anchor]);
                let end = match cfg.cooccurrence_window {
                    Some(w) => words.len().min(anchor + w as usize + 1),
                    None => words.len(),
                };
                for word in &words[anchor + 1..end] {
                    if picked.len() >= n_terms {
                        break;
                    }
                    if frequent.contains(word) && !picked.contains(word) {
                        picked.push(word);
                    }
                }
            } else {
                // Prefer rarer (longer-rank) terms: sample positions and keep
                // distinct words.
                let mut attempts = 0;
                while picked.len() < n_terms && attempts < 50 {
                    attempts += 1;
                    let w = words[rng.gen_range(0..words.len())];
                    if !picked.contains(&w) && w.len() >= 3 {
                        picked.push(w);
                    }
                }
            }
            if picked.len() < cfg.min_terms {
                continue;
            }
            picked.sort_unstable();
            let q = picked.join(" ");
            if !distinct.contains(&q) {
                distinct.push(q);
            }
        }
        // If the corpus was too small to produce enough distinct queries, fall back to
        // single vocabulary terms.
        let mut vi = 0usize;
        while distinct.len() < cfg.distinct_queries && vi < corpus.vocabulary.len() {
            let q = corpus.vocabulary[vi].clone();
            if !distinct.contains(&q) {
                distinct.push(q);
            }
            vi += 1;
        }

        let zipf = Zipf::new(distinct.len().max(1), cfg.popularity_exponent);
        let mut queries = Vec::with_capacity(cfg.num_queries);
        let half = cfg.num_queries / 2;
        for seq in 0..cfg.num_queries {
            let rank = zipf.sample(&mut rng);
            // Popularity drift: in the second half of the log the rank order is rotated
            // by half the pool, so the head queries change.
            let query_id = if cfg.popularity_drift && seq >= half {
                (rank + distinct.len() / 2) % distinct.len()
            } else {
                rank
            };
            queries.push(LoggedQuery {
                text: distinct[query_id].clone(),
                query_id,
                sequence: seq,
            });
        }

        QueryLog {
            queries,
            distinct,
            config: cfg.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, CorpusGenerator};

    fn corpus() -> SyntheticCorpus {
        CorpusGenerator::new(CorpusConfig::tiny(), 11).generate()
    }

    #[test]
    fn log_has_requested_size_and_term_counts() {
        let c = corpus();
        let cfg = QueryLogConfig::tiny();
        let log = QueryLogGenerator::new(cfg.clone(), 1).generate(&c);
        assert_eq!(log.len(), cfg.num_queries);
        assert_eq!(log.distinct.len(), cfg.distinct_queries);
        assert!(!log.is_empty());
        for q in &log.queries {
            let terms = q.text.split_whitespace().count();
            assert!(terms >= 1 && terms <= cfg.max_terms, "query '{}'", q.text);
            assert_eq!(&log.distinct[q.query_id], &q.text);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = corpus();
        let a = QueryLogGenerator::new(QueryLogConfig::tiny(), 3).generate(&c);
        let b = QueryLogGenerator::new(QueryLogConfig::tiny(), 3).generate(&c);
        assert_eq!(a.queries, b.queries);
        let d = QueryLogGenerator::new(QueryLogConfig::tiny(), 4).generate(&c);
        assert_ne!(a.queries, d.queries);
    }

    #[test]
    fn popularity_is_skewed() {
        let c = corpus();
        let log = QueryLogGenerator::new(QueryLogConfig::tiny(), 5).generate(&c);
        let mut hist = log.popularity_histogram();
        hist.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(hist.iter().sum::<usize>(), log.len());
        // The most popular query should be much more frequent than the median one.
        assert!(
            hist[0] >= 3 * hist[hist.len() / 2].max(1),
            "histogram head {hist:?}"
        );
    }

    #[test]
    fn queries_have_matching_documents() {
        let c = corpus();
        let log = QueryLogGenerator::new(QueryLogConfig::tiny(), 7).generate(&c);
        // Every multi-term query was sampled from a single document, so at least one
        // document must contain all of its terms.
        let mut checked = 0;
        for q in log.distinct.iter().take(20) {
            let terms: Vec<&str> = q.split_whitespace().collect();
            if terms.len() < 2 {
                continue;
            }
            let hit = c.docs.iter().any(|d| {
                let words: std::collections::HashSet<&str> = d.body.split_whitespace().collect();
                terms.iter().all(|t| words.contains(t))
            });
            assert!(hit, "no document matches query '{q}'");
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn head_term_log_draws_frequent_cooccurring_terms() {
        let c = corpus();
        // Document frequencies, computed the same way the generator does.
        let mut df: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for d in &c.docs {
            let words: std::collections::HashSet<&str> = d.body.split_whitespace().collect();
            for w in words {
                *df.entry(w).or_insert(0) += 1;
            }
        }
        let min_df = {
            // Pick a threshold that leaves a healthy head pool in the tiny corpus.
            let mut counts: Vec<usize> = df.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[counts.len() / 4]
        };
        let window = 20u32;
        let cfg = QueryLogConfig {
            num_queries: 200,
            distinct_queries: 20,
            min_terms: 2,
            max_terms: 2,
            min_term_df: Some(min_df),
            cooccurrence_window: Some(window),
            ..Default::default()
        };
        let log = QueryLogGenerator::new(cfg, 17).generate(&c);
        let mut windowed_pairs = 0;
        for q in &log.distinct {
            let terms: Vec<&str> = q.split_whitespace().collect();
            if terms.len() < 2 {
                continue; // corpus-too-small fallback fills with vocabulary singles
            }
            for t in &terms {
                assert!(
                    df.get(t).copied().unwrap_or(0) > min_df,
                    "head-term query '{q}' picked infrequent term '{t}'"
                );
            }
            // Some document must contain both terms within the window.
            let hit = c.docs.iter().any(|d| {
                let words: Vec<&str> = d.body.split_whitespace().collect();
                let pos = |t: &str| -> Vec<u32> {
                    words
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| **w == t)
                        .map(|(i, _)| i as u32)
                        .collect()
                };
                let (pa, pb) = (pos(terms[0]), pos(terms[1]));
                pa.iter()
                    .any(|a| pb.iter().any(|b| a.abs_diff(*b) <= window))
            });
            assert!(hit, "no document holds '{q}' within {window} positions");
            windowed_pairs += 1;
        }
        assert!(
            windowed_pairs > 0,
            "head log produced no multi-term queries"
        );
    }

    #[test]
    fn drift_changes_the_popular_queries() {
        let c = corpus();
        let cfg = QueryLogConfig {
            popularity_drift: true,
            num_queries: 400,
            distinct_queries: 40,
            ..QueryLogConfig::tiny()
        };
        let log = QueryLogGenerator::new(cfg, 9).generate(&c);
        let half = log.len() / 2;
        let top_of = |range: std::ops::Range<usize>| -> usize {
            let mut hist = vec![0usize; log.distinct.len()];
            for q in &log.queries[range] {
                hist[q.query_id] += 1;
            }
            hist.iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .unwrap()
        };
        let top_first = top_of(0..half);
        let top_second = top_of(half..log.len());
        assert_ne!(
            top_first, top_second,
            "drift should change the most popular query"
        );
    }
}
