//! BM25 ranking.
//!
//! The paper's ranking layer (L4) uses "the state-of-the-art BM25 ranking function".
//! This module provides both the raw scoring function — reused by the distributed
//! ranking component, which feeds it *global* statistics gathered from the P2P
//! network — and a local top-k searcher over a peer's [`InvertedIndex`].

use crate::doc::DocId;
use crate::index::InvertedIndex;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashMap;

/// BM25 parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation parameter (typical range 1.2–2.0).
    pub k1: f64,
    /// Length-normalisation parameter in `[0, 1]`.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Robertson–Sparck Jones inverse document frequency with the standard +0.5 smoothing,
/// floored at a small positive value so that very frequent terms still contribute a
/// non-negative score.
pub fn idf(doc_freq: u64, doc_count: u64) -> f64 {
    let n = doc_count as f64;
    let df = doc_freq as f64;
    (((n - df + 0.5) / (df + 0.5)) + 1.0).ln().max(1e-6)
}

/// BM25 contribution of a single term occurrence profile in a document.
///
/// * `tf` — term frequency in the document,
/// * `doc_len` — document length in analyzed terms,
/// * `avg_doc_len` — average document length over the (global) collection,
/// * `doc_freq`/`doc_count` — document frequency of the term and collection size.
pub fn bm25_term_score(
    tf: u32,
    doc_len: u32,
    avg_doc_len: f64,
    doc_freq: u64,
    doc_count: u64,
    params: Bm25Params,
) -> f64 {
    if tf == 0 || doc_count == 0 {
        return 0.0;
    }
    let tf = tf as f64;
    let avg = if avg_doc_len <= 0.0 { 1.0 } else { avg_doc_len };
    let norm = params.k1 * (1.0 - params.b + params.b * (doc_len as f64 / avg));
    idf(doc_freq, doc_count) * (tf * (params.k1 + 1.0)) / (tf + norm)
}

/// A scored document.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Its BM25 score with respect to the query.
    pub score: f64,
}

impl ScoredDoc {
    /// Total ordering: by descending score, ties broken by ascending document id so
    /// that rankings are deterministic.
    pub fn ranking_cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

/// Sorts scored documents into ranking order (descending score, ascending id) and
/// truncates to `k` results.
pub fn top_k(mut scored: Vec<ScoredDoc>, k: usize) -> Vec<ScoredDoc> {
    scored.sort_by(ScoredDoc::ranking_cmp);
    scored.truncate(k);
    scored
}

/// A BM25 searcher over a local inverted index.
#[derive(Clone, Debug)]
pub struct Bm25Searcher<'a> {
    index: &'a InvertedIndex,
    params: Bm25Params,
}

impl<'a> Bm25Searcher<'a> {
    /// Creates a searcher with default parameters.
    pub fn new(index: &'a InvertedIndex) -> Self {
        Bm25Searcher {
            index,
            params: Bm25Params::default(),
        }
    }

    /// Creates a searcher with explicit parameters.
    pub fn with_params(index: &'a InvertedIndex, params: Bm25Params) -> Self {
        Bm25Searcher { index, params }
    }

    /// Scores all documents matching at least one query term (disjunctive semantics,
    /// like the paper's result-merging step) and returns the top `k`.
    ///
    /// `query_terms` must already be analyzed (normalized/stemmed).
    pub fn search(&self, query_terms: &[String], k: usize) -> Vec<ScoredDoc> {
        let scores = self.score_all(query_terms);
        top_k(
            scores
                .into_iter()
                .map(|(doc, score)| ScoredDoc { doc, score })
                .collect(),
            k,
        )
    }

    /// Scores all matching documents without truncation (used by experiments that need
    /// the full centralized reference ranking).
    pub fn score_all(&self, query_terms: &[String]) -> HashMap<DocId, f64> {
        let doc_count = self.index.doc_count() as u64;
        let avg = self.index.avg_doc_len();
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        for term in query_terms {
            let Some(list) = self.index.postings(term) else {
                continue;
            };
            let df = list.df() as u64;
            for posting in &list.postings {
                let dl = self.index.doc_len(posting.doc).unwrap_or(0);
                let s = bm25_term_score(posting.tf, dl, avg, df, doc_count, self.params);
                *acc.entry(posting.doc).or_insert(0.0) += s;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::Analyzer;

    fn build_index() -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        let docs = [
            "peer to peer retrieval with distributed hash tables",
            "peer networks exchange posting lists between peers peers",
            "centralized search engines crawl and index the web",
            "bm25 is a ranking function used by search engines",
            "text retrieval quality is measured with precision and recall",
        ];
        for (i, d) in docs.iter().enumerate() {
            idx.index_text(DocId::new(0, i as u32), d);
        }
        idx
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        assert!(idf(1, 1000) > idf(10, 1000));
        assert!(idf(10, 1000) > idf(500, 1000));
        assert!(idf(999, 1000) > 0.0, "idf stays positive");
    }

    #[test]
    fn term_score_increases_with_tf_but_saturates() {
        let p = Bm25Params::default();
        let s1 = bm25_term_score(1, 100, 100.0, 10, 1000, p);
        let s2 = bm25_term_score(2, 100, 100.0, 10, 1000, p);
        let s10 = bm25_term_score(10, 100, 100.0, 10, 1000, p);
        let s100 = bm25_term_score(100, 100, 100.0, 10, 1000, p);
        assert!(s2 > s1);
        assert!(s10 > s2);
        // Saturation: going from 10 to 100 occurrences gains less than from 1 to 2.
        assert!(s100 - s10 < s2 - s1);
        assert_eq!(bm25_term_score(0, 100, 100.0, 10, 1000, p), 0.0);
    }

    #[test]
    fn longer_documents_are_penalized() {
        let p = Bm25Params::default();
        let short = bm25_term_score(3, 50, 100.0, 10, 1000, p);
        let long = bm25_term_score(3, 500, 100.0, 10, 1000, p);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalisation() {
        let p = Bm25Params { k1: 1.2, b: 0.0 };
        let short = bm25_term_score(3, 50, 100.0, 10, 1000, p);
        let long = bm25_term_score(3, 500, 100.0, 10, 1000, p);
        assert!((short - long).abs() < 1e-12);
    }

    #[test]
    fn search_ranks_relevant_documents_first() {
        let idx = build_index();
        let analyzer = Analyzer::default();
        let q = analyzer.analyze_query("peer retrieval");
        let results = Bm25Searcher::new(&idx).search(&q, 10);
        assert!(!results.is_empty());
        // Doc 0 contains both query terms and should rank first.
        assert_eq!(results[0].doc, DocId::new(0, 0));
        // Every returned document contains at least one query term.
        assert!(results.len() >= 3);
        // Scores are non-increasing.
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn search_respects_k() {
        let idx = build_index();
        let q = vec![
            "search".to_string(),
            "retriev".to_string(),
            "peer".to_string(),
        ];
        let top2 = Bm25Searcher::new(&idx).search(&q, 2);
        assert_eq!(top2.len(), 2);
        let all = Bm25Searcher::new(&idx).search(&q, 100);
        assert!(all.len() > 2);
        // The top-2 prefix matches the full ranking's prefix.
        assert_eq!(top2[0].doc, all[0].doc);
        assert_eq!(top2[1].doc, all[1].doc);
    }

    #[test]
    fn unknown_terms_yield_empty_results() {
        let idx = build_index();
        let res = Bm25Searcher::new(&idx).search(&["zzzzz".to_string()], 10);
        assert!(res.is_empty());
        let res2 = Bm25Searcher::new(&idx).search(&[], 10);
        assert!(res2.is_empty());
    }

    #[test]
    fn ranking_ties_break_deterministically() {
        let a = ScoredDoc {
            doc: DocId::new(0, 2),
            score: 1.0,
        };
        let b = ScoredDoc {
            doc: DocId::new(0, 1),
            score: 1.0,
        };
        let ranked = top_k(vec![a, b], 2);
        assert_eq!(ranked[0].doc, DocId::new(0, 1));
        assert_eq!(ranked[1].doc, DocId::new(0, 2));
    }

    #[test]
    fn top_k_truncates() {
        let scored: Vec<ScoredDoc> = (0..20)
            .map(|i| ScoredDoc {
                doc: DocId::new(0, i),
                score: f64::from(i),
            })
            .collect();
        let top = top_k(scored, 5);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].doc, DocId::new(0, 19));
    }
}
