//! Porter stemmer.
//!
//! A faithful implementation of M.F. Porter's 1980 suffix-stripping algorithm, the
//! stemmer used by Terrier (and therefore by the AlvisP2P local indexer) for English
//! text. Stemming conflates morphological variants ("retrieval", "retrieve",
//! "retrieving") onto one index term, which both improves recall and reduces the
//! vocabulary the HDK key generator has to consider.
//!
//! Words containing non-ASCII-alphabetic characters are returned unchanged.

/// Stems a single lowercase word with the Porter algorithm.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len(),
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    String::from_utf8_lossy(&s.b[..s.k]).into_owned()
}

struct Stemmer {
    b: Vec<u8>,
    /// Length of the current stem prefix of `b` under consideration.
    k: usize,
}

impl Stemmer {
    /// Is b[i] a consonant?
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The "measure" m of the stem b[..j]: the number of VC sequences.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        loop {
            if i >= j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i >= j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i >= j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Does the stem b[..j] contain a vowel?
    fn vowel_in_stem(&self, j: usize) -> bool {
        (0..j).any(|i| !self.cons(i))
    }

    /// Does b[..k] end with a double consonant?
    fn double_cons(&self, j: usize) -> bool {
        if j < 2 {
            return false;
        }
        self.b[j - 1] == self.b[j - 2] && self.cons(j - 1)
    }

    /// Is b[i-2..=i] consonant-vowel-consonant, where the final consonant is not
    /// w, x or y? Used to detect short stems like "hop" (for "hopping" -> "hop").
    fn cvc(&self, i: usize) -> bool {
        if i < 3 {
            return false;
        }
        let last = i - 1;
        if !self.cons(last) || self.cons(last - 1) || !self.cons(last - 2) {
            return false;
        }
        !matches!(self.b[last], b'w' | b'x' | b'y')
    }

    /// Does the current word b[..k] end with the suffix `s`? If so, remember j.
    fn ends(&self, s: &str) -> Option<usize> {
        let s = s.as_bytes();
        if s.len() > self.k {
            return None;
        }
        let j = self.k - s.len();
        if &self.b[j..self.k] == s {
            Some(j)
        } else {
            None
        }
    }

    /// Replaces the suffix starting at `j` with `s` and updates k.
    fn set_to(&mut self, j: usize, s: &str) {
        self.b.truncate(j);
        self.b.extend_from_slice(s.as_bytes());
        self.k = self.b.len();
    }

    /// Replaces the suffix with `s` when the measure of the stem is > 0.
    fn replace_if_m_gt_0(&mut self, suffix: &str, replacement: &str) -> bool {
        if let Some(j) = self.ends(suffix) {
            if self.measure(j) > 0 {
                self.set_to(j, replacement);
            }
            true
        } else {
            false
        }
    }

    fn step1ab(&mut self) {
        // Step 1a: plurals.
        if self.b[self.k - 1] == b's' {
            if let Some(j) = self.ends("sses") {
                self.set_to(j, "ss");
            } else if let Some(j) = self.ends("ies") {
                self.set_to(j, "i");
            } else if self.k >= 2 && self.b[self.k - 2] != b's' {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        }
        // Step 1b: -eed, -ed, -ing.
        if let Some(j) = self.ends("eed") {
            if self.measure(j) > 0 {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        } else {
            let matched = if let Some(j) = self.ends("ed") {
                if self.vowel_in_stem(j) {
                    self.set_to(j, "");
                    true
                } else {
                    false
                }
            } else if let Some(j) = self.ends("ing") {
                if self.vowel_in_stem(j) {
                    self.set_to(j, "");
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if matched {
                if self.ends("at").is_some()
                    || self.ends("bl").is_some()
                    || self.ends("iz").is_some()
                {
                    let k = self.k;
                    self.set_to(k, "e");
                } else if self.double_cons(self.k) {
                    let last = self.b[self.k - 1];
                    if !matches!(last, b'l' | b's' | b'z') {
                        self.k -= 1;
                        self.b.truncate(self.k);
                    }
                } else if self.measure(self.k) == 1 && self.cvc(self.k) {
                    let k = self.k;
                    self.set_to(k, "e");
                }
            }
        }
    }

    fn step1c(&mut self) {
        if let Some(j) = self.ends("y") {
            if self.vowel_in_stem(j) {
                self.b[self.k - 1] = b'i';
            }
        }
    }

    fn step2(&mut self) {
        if self.k < 3 {
            return;
        }
        let pairs: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in pairs {
            if self.replace_if_m_gt_0(suffix, replacement) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        let pairs: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in pairs {
            if self.replace_if_m_gt_0(suffix, replacement) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        let suffixes: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in suffixes {
            if let Some(j) = self.ends(suffix) {
                if *suffix == "ion" && !(j > 0 && matches!(self.b[j - 1], b's' | b't')) {
                    // -ion only strips after s or t; keep scanning other suffixes
                    // (per the original algorithm this position fails and we stop).
                    return;
                }
                if self.measure(j) > 1 {
                    self.set_to(j, "");
                }
                return;
            }
        }
    }

    fn step5(&mut self) {
        // Step 5a.
        if self.b[self.k - 1] == b'e' {
            let j = self.k - 1;
            let m = self.measure(j);
            if m > 1 || (m == 1 && !self.cvc(j)) {
                self.k = j;
                self.b.truncate(self.k);
            }
        }
        // Step 5b.
        if self.k > 1
            && self.b[self.k - 1] == b'l'
            && self.double_cons(self.k)
            && self.measure(self.k) > 1
        {
            self.k -= 1;
            self.b.truncate(self.k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn retrieval_variants_conflate() {
        assert_eq!(stem("retrieval"), stem("retrieval"));
        assert_eq!(stem("retrieving"), "retriev");
        assert_eq!(stem("retrieved"), "retriev");
        assert_eq!(stem("retrieves"), "retriev");
        assert_eq!(stem("indexing"), "index");
        assert_eq!(stem("indexes"), "index");
        assert_eq!(stem("indexed"), "index");
        assert_eq!(stem("queries"), "queri");
        assert_eq!(stem("querying"), "queri");
    }

    #[test]
    fn short_words_are_untouched() {
        for w in ["a", "ab", "is", "p2p", "of"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn non_ascii_words_are_untouched() {
        assert_eq!(stem("zürich"), "zürich");
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("bm25"), "bm25");
    }

    #[test]
    fn stemming_is_idempotent_on_common_vocabulary() {
        let words = [
            "distribution",
            "scalable",
            "networks",
            "peers",
            "searching",
            "documents",
            "combinations",
            "popularity",
            "statistics",
            "ranking",
            "bandwidth",
        ];
        for w in words {
            let once = stem(w);
            let twice = stem(&once);
            assert_eq!(once, twice, "stemming {w} is not idempotent");
        }
    }
}
