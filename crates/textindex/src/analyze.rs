//! The analysis pipeline: tokenize → stopword-filter → stem.
//!
//! Both document indexing and query processing must run text through exactly the same
//! pipeline, otherwise query terms and index terms would not match. The pipeline is
//! configurable (stopword list, stemming on/off) because the paper's heterogeneity
//! story allows peers to run different local indexing models as long as the digest
//! they publish uses agreed-upon terms.

use crate::intern::TermId;
use crate::stem::stem;
use crate::stopwords::Stopwords;
use crate::tokenize::tokenize;
use serde::{Deserialize, Serialize};

/// An analyzed term occurrence: the normalized term and its word position in the text.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermOccurrence {
    /// The normalized (lowercased, stemmed) term.
    pub term: String,
    /// Zero-based word position in the original text.
    pub position: u32,
}

/// Configuration of the analysis pipeline.
#[derive(Clone, Debug)]
pub struct AnalyzerConfig {
    /// Whether stopwords are removed.
    pub remove_stopwords: bool,
    /// Whether terms are stemmed with the Porter stemmer.
    pub stem: bool,
    /// Minimum term length kept (after normalization).
    pub min_term_len: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            remove_stopwords: true,
            stem: true,
            min_term_len: 2,
        }
    }
}

/// The text-analysis pipeline shared by indexing and querying.
#[derive(Clone, Debug)]
pub struct Analyzer {
    config: AnalyzerConfig,
    stopwords: Stopwords,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new(AnalyzerConfig::default(), Stopwords::english())
    }
}

impl Analyzer {
    /// Creates an analyzer with explicit configuration.
    pub fn new(config: AnalyzerConfig, stopwords: Stopwords) -> Self {
        Analyzer { config, stopwords }
    }

    /// An analyzer that only lowercases and tokenizes (no stopwords, no stemming).
    pub fn plain() -> Self {
        Analyzer::new(
            AnalyzerConfig {
                remove_stopwords: false,
                stem: false,
                min_term_len: 1,
            },
            Stopwords::none(),
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Analyzes a text into term occurrences (keeping original word positions).
    pub fn analyze(&self, text: &str) -> Vec<TermOccurrence> {
        tokenize(text)
            .into_iter()
            .filter(|t| t.text.chars().count() >= self.config.min_term_len)
            .filter(|t| !self.config.remove_stopwords || !self.stopwords.contains(&t.text))
            .map(|t| TermOccurrence {
                term: if self.config.stem {
                    stem(&t.text)
                } else {
                    t.text
                },
                position: t.position,
            })
            .collect()
    }

    /// Analyzes a text and returns only the distinct terms (sorted, deduplicated).
    pub fn analyze_distinct(&self, text: &str) -> Vec<String> {
        let mut terms: Vec<String> = self.analyze(text).into_iter().map(|o| o.term).collect();
        terms.sort_unstable();
        terms.dedup();
        terms
    }

    /// Analyzes a query string into its (distinct, sorted) query terms.
    ///
    /// Queries go through the same normalization as documents so that query terms and
    /// index terms live in the same vocabulary.
    pub fn analyze_query(&self, query: &str) -> Vec<String> {
        self.analyze_distinct(query)
    }

    /// Analyzes a text into its distinct **interned** terms (deduplicated, in
    /// id order). This is the entry point the query pipeline uses: downstream
    /// key construction, planning and probing work on [`TermId`]s directly and
    /// never re-touch the strings. (Analysis itself still allocates per token
    /// — the tokenizer and stemmer produce transient `String`s — so this is
    /// not an allocation-free path; the interned ids are what make everything
    /// *after* analysis allocation-free.)
    pub fn analyze_distinct_ids(&self, text: &str) -> Vec<TermId> {
        let mut ids: Vec<TermId> = self
            .analyze(text)
            .into_iter()
            .map(|o| TermId::intern(&o.term))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Interned-term variant of [`Analyzer::analyze_query`] — **lookup-only**.
    ///
    /// Unlike [`Analyzer::analyze_distinct_ids`] (the indexing-side entry
    /// point, which interns), this resolves query terms through
    /// [`crate::intern::try_term_id`] and silently drops terms that were never
    /// interned. A term no document ever published cannot match anything, so
    /// dropping it changes no result — and an untrusted query stream full of
    /// never-seen terms cannot grow the process-wide leaky interner (pinned by
    /// `tests/query_path_interning.rs` in `alvisp2p-core`).
    ///
    /// The existence check is against the **process-wide** interner, not any
    /// particular network's vocabulary: in a process hosting several simulated
    /// networks, a term published only elsewhere still resolves here and is
    /// probed (and found missing) exactly as before this change. Deployed
    /// nodes run one network per process, where "interned" and "published"
    /// coincide.
    pub fn analyze_query_ids(&self, query: &str) -> Vec<TermId> {
        let mut ids: Vec<TermId> = self
            .analyze(query)
            .into_iter()
            .filter_map(|o| crate::intern::try_term_id(&o.term))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_removes_stopwords_and_stems() {
        let a = Analyzer::default();
        let occs = a.analyze("The retrieval of documents in the distributed networks");
        let terms: Vec<&str> = occs.iter().map(|o| o.term.as_str()).collect();
        assert_eq!(terms, vec!["retriev", "document", "distribut", "network"]);
        // Positions refer to the original token positions.
        assert_eq!(occs[0].position, 1);
        assert_eq!(occs[1].position, 3);
    }

    #[test]
    fn plain_analyzer_keeps_everything() {
        let a = Analyzer::plain();
        let terms: Vec<String> = a
            .analyze("The Cat AND the Hat")
            .into_iter()
            .map(|o| o.term)
            .collect();
        assert_eq!(terms, vec!["the", "cat", "and", "the", "hat"]);
    }

    #[test]
    fn distinct_terms_are_sorted_and_unique() {
        let a = Analyzer::default();
        let d = a.analyze_distinct("peers and peers and more peers searching searches");
        assert_eq!(d, vec!["peer", "search"]);
    }

    #[test]
    fn interned_analysis_matches_string_analysis() {
        let a = Analyzer::default();
        let text = "peers and peers and more peers searching searches";
        let strs = a.analyze_distinct(text);
        let mut resolved: Vec<&str> = a
            .analyze_distinct_ids(text)
            .iter()
            .map(|id| id.as_str())
            .collect();
        resolved.sort_unstable();
        assert_eq!(resolved, strs);
        assert_eq!(a.analyze_query_ids(""), Vec::new());
    }

    #[test]
    fn query_and_document_share_vocabulary() {
        let a = Analyzer::default();
        let doc_terms = a.analyze_distinct("Scalable peer-to-peer text retrieval systems");
        let query_terms = a.analyze_query("retrieving scalability in peer systems");
        for qt in &query_terms {
            if qt == "scalabl" || qt == "retriev" || qt == "peer" || qt == "system" {
                assert!(
                    doc_terms.contains(qt),
                    "query term {qt} missing from doc terms {doc_terms:?}"
                );
            }
        }
    }

    #[test]
    fn min_term_length_filters_single_letters() {
        let a = Analyzer::default();
        let terms = a.analyze_distinct("x y z database");
        assert_eq!(terms, vec!["databas"]);
    }

    #[test]
    fn empty_input_yields_no_terms() {
        let a = Analyzer::default();
        assert!(a.analyze("").is_empty());
        assert!(a.analyze_query("the of and").is_empty());
    }
}
