//! Documents and the per-peer document store.
//!
//! In AlvisP2P documents always remain at the peer that owns them; only index entries
//! travel through the network. A [`Document`] therefore carries its full text plus the
//! metadata shown in the client's result list (title, URL at the hosting peer, size),
//! and the [`DocumentStore`] is the peer-local "shared directory" of published
//! documents.

use crate::access::AccessRights;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Globally unique document identifier: `(peer id, local document number)`.
///
/// Using the owning peer as part of the identifier mirrors the paper's design where a
/// result's URL always points back at the hosting peer
/// (`http://PeerIP:Port/SharedDir/DocumentName`).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct DocId {
    /// Identifier of the peer that owns/hosts the document.
    pub peer: u32,
    /// Document number local to that peer.
    pub local: u32,
}

impl DocId {
    /// Creates a document identifier.
    pub fn new(peer: u32, local: u32) -> Self {
        DocId { peer, local }
    }

    /// Packs the identifier into a single u64 (used for compact posting lists).
    pub fn as_u64(self) -> u64 {
        (u64::from(self.peer) << 32) | u64::from(self.local)
    }

    /// Unpacks an identifier from its u64 form.
    pub fn from_u64(v: u64) -> Self {
        DocId {
            peer: (v >> 32) as u32,
            local: (v & 0xFFFF_FFFF) as u32,
        }
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc{}@peer{}", self.local, self.peer)
    }
}

/// The supported source formats of a published document (the paper's client accepts
/// text, HTML, XML, PDF/Word and the Alvis XML format; multimedia is published through
/// an XML description).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DocumentFormat {
    /// Plain text.
    #[default]
    Text,
    /// HTML page.
    Html,
    /// Generic XML.
    Xml,
    /// PDF (text already extracted).
    Pdf,
    /// Word processor document (text already extracted).
    Word,
    /// Alvis XML description of an external or multimedia resource.
    AlvisDescription,
}

/// A published document.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Globally unique identifier.
    pub id: DocId,
    /// Human-readable title shown in result lists.
    pub title: String,
    /// Full text content (or textual description for multimedia resources).
    pub body: String,
    /// URL at which the hosting peer serves the document.
    pub url: String,
    /// Source format.
    pub format: DocumentFormat,
    /// Access rights controlling who may fetch the full document.
    pub access: AccessRights,
}

impl Document {
    /// Creates a plain-text document with open access.
    pub fn new(id: DocId, title: impl Into<String>, body: impl Into<String>) -> Self {
        let title = title.into();
        let url = format!("http://peer{}:8080/shared/{}", id.peer, slugify(&title));
        Document {
            id,
            title,
            body: body.into(),
            url,
            format: DocumentFormat::Text,
            access: AccessRights::Public,
        }
    }

    /// Sets the document format.
    pub fn with_format(mut self, format: DocumentFormat) -> Self {
        self.format = format;
        self
    }

    /// Sets the access rights.
    pub fn with_access(mut self, access: AccessRights) -> Self {
        self.access = access;
        self
    }

    /// Document length in whitespace-separated words (used by BM25 normalisation).
    pub fn word_count(&self) -> usize {
        self.body.split_whitespace().count()
    }

    /// A result snippet: the first `max_chars` characters of the body on a word
    /// boundary.
    pub fn snippet(&self, max_chars: usize) -> String {
        if self.body.chars().count() <= max_chars {
            return self.body.clone();
        }
        let mut out = String::new();
        for word in self.body.split_whitespace() {
            if out.chars().count() + word.chars().count() + 1 > max_chars {
                break;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(word);
        }
        out.push('…');
        out
    }
}

fn slugify(title: &str) -> String {
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let mut cleaned = String::new();
    let mut prev_dash = false;
    for c in slug.chars() {
        if c == '-' {
            if !prev_dash {
                cleaned.push(c);
            }
            prev_dash = true;
        } else {
            cleaned.push(c);
            prev_dash = false;
        }
    }
    cleaned.trim_matches('-').to_string()
}

/// The peer-local store of published documents (the "shared directory").
#[derive(Clone, Debug, Default)]
pub struct DocumentStore {
    docs: BTreeMap<DocId, Document>,
    next_local: u32,
    peer: u32,
}

impl DocumentStore {
    /// Creates an empty store owned by `peer`.
    pub fn new(peer: u32) -> Self {
        DocumentStore {
            docs: BTreeMap::new(),
            next_local: 0,
            peer,
        }
    }

    /// The owning peer's identifier.
    pub fn peer(&self) -> u32 {
        self.peer
    }

    /// Publishes a document with the next local identifier and returns its id.
    pub fn publish(&mut self, title: impl Into<String>, body: impl Into<String>) -> DocId {
        let id = DocId::new(self.peer, self.next_local);
        self.next_local += 1;
        self.docs.insert(id, Document::new(id, title, body));
        id
    }

    /// Publishes a fully specified document (keeps its id if unused, otherwise
    /// allocates the next local id).
    pub fn publish_document(&mut self, mut doc: Document) -> DocId {
        if doc.id.peer != self.peer || self.docs.contains_key(&doc.id) {
            doc.id = DocId::new(self.peer, self.next_local);
            self.next_local += 1;
        } else {
            self.next_local = self.next_local.max(doc.id.local + 1);
        }
        let id = doc.id;
        self.docs.insert(id, doc);
        id
    }

    /// Removes a document (un-publishing it). Returns the removed document.
    pub fn remove(&mut self, id: DocId) -> Option<Document> {
        self.docs.remove(&id)
    }

    /// Retrieves a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Number of published documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether no documents are published.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterates over all documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_packs_and_unpacks() {
        let id = DocId::new(7, 12345);
        assert_eq!(DocId::from_u64(id.as_u64()), id);
        assert_eq!(DocId::from_u64(0), DocId::new(0, 0));
        let max = DocId::new(u32::MAX, u32::MAX);
        assert_eq!(DocId::from_u64(max.as_u64()), max);
        assert_eq!(format!("{id}"), "doc12345@peer7");
    }

    #[test]
    fn publish_assigns_sequential_local_ids() {
        let mut store = DocumentStore::new(3);
        let a = store.publish("First", "body one");
        let b = store.publish("Second", "body two");
        assert_eq!(a, DocId::new(3, 0));
        assert_eq!(b, DocId::new(3, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a).unwrap().title, "First");
    }

    #[test]
    fn publish_document_reassigns_foreign_ids() {
        let mut store = DocumentStore::new(1);
        let doc = Document::new(DocId::new(9, 5), "Foreign", "text");
        let id = store.publish_document(doc);
        assert_eq!(id.peer, 1);
        // A document with an unused id of the right peer keeps it.
        let doc2 = Document::new(DocId::new(1, 10), "Kept", "text");
        let id2 = store.publish_document(doc2);
        assert_eq!(id2, DocId::new(1, 10));
        // And the next auto id does not collide.
        let id3 = store.publish("Auto", "text");
        assert_eq!(id3, DocId::new(1, 11));
    }

    #[test]
    fn urls_are_derived_from_peer_and_title() {
        let doc = Document::new(DocId::new(4, 0), "P2P Text Retrieval!", "...");
        assert_eq!(doc.url, "http://peer4:8080/shared/p2p-text-retrieval");
    }

    #[test]
    fn snippet_truncates_on_word_boundaries() {
        let doc = Document::new(
            DocId::new(0, 0),
            "t",
            "alpha beta gamma delta epsilon zeta eta theta",
        );
        let s = doc.snippet(20);
        assert!(s.ends_with('…'));
        assert!(s.chars().count() <= 21);
        assert!(s.starts_with("alpha beta"));
        // Short bodies are returned unchanged.
        let short = Document::new(DocId::new(0, 1), "t", "tiny body");
        assert_eq!(short.snippet(100), "tiny body");
    }

    #[test]
    fn remove_unpublishes() {
        let mut store = DocumentStore::new(0);
        let id = store.publish("Doc", "body");
        assert!(store.remove(id).is_some());
        assert!(store.get(id).is_none());
        assert!(store.remove(id).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn word_count_counts_whitespace_words() {
        let doc = Document::new(DocId::new(0, 0), "t", "one two  three\nfour");
        assert_eq!(doc.word_count(), 4);
    }
}
