//! # alvisp2p-textindex
//!
//! The **local search engine** substrate (layer 5) of the AlvisP2P reproduction, plus
//! the workload generators used by the experiment harness. In the original prototype
//! this role is played by the Terrier search engine; here everything is implemented
//! from scratch:
//!
//! * [`mod@tokenize`], [`stopwords`], [`mod@stem`], [`analyze`] — the text-analysis pipeline
//!   (tokenizer, English stopword list, Porter stemmer);
//! * [`intern`] — the process-wide term interner mapping analyzed terms to dense
//!   [`TermId`]s, the substrate of the allocation-free key hot paths upstream;
//! * [`doc`] — documents, the peer-local document store, result snippets;
//! * [`access`] — per-document access rights (public / password-protected / private);
//! * [`index`] — the positional inverted index and mergeable collection statistics;
//! * [`bm25`] — BM25 scoring and local top-k search;
//! * [`corpus`], [`querylog`] — seeded synthetic corpora and Zipfian query logs used
//!   by every experiment.
//!
//! The *Alvis document digest* (the interchange format for plugging external
//! search engines into a peer) lives upstream in `alvisp2p-core`'s sketch
//! module, alongside the other compact per-collection summaries.
//!
//! ```
//! use alvisp2p_textindex::{Analyzer, Bm25Searcher, DocId, InvertedIndex};
//!
//! let mut index = InvertedIndex::default();
//! index.index_text(DocId::new(0, 0), "peer to peer text retrieval");
//! index.index_text(DocId::new(0, 1), "centralized web search engines");
//!
//! let analyzer = Analyzer::default();
//! let query = analyzer.analyze_query("peer retrieval");
//! let results = Bm25Searcher::new(&index).search(&query, 10);
//! assert_eq!(results[0].doc, DocId::new(0, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod analyze;
pub mod bm25;
pub mod corpus;
pub mod doc;
pub mod index;
pub mod intern;
pub mod querylog;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use access::{AccessDecision, AccessRights, Credentials};
pub use analyze::{Analyzer, AnalyzerConfig, TermOccurrence};
pub use bm25::{bm25_term_score, idf, top_k, Bm25Params, Bm25Searcher, ScoredDoc};
pub use corpus::{
    build_vocabulary, demo_corpus, CorpusConfig, CorpusGenerator, GeneratedDoc, SyntheticCorpus,
};
pub use doc::{DocId, Document, DocumentFormat, DocumentStore};
pub use index::{CollectionStats, InvertedIndex, Posting, PostingList};
pub use intern::{interned_terms, resolver, Resolver, TermId};
pub use querylog::{LoggedQuery, QueryLog, QueryLogConfig, QueryLogGenerator};
pub use stem::stem;
pub use stopwords::Stopwords;
pub use tokenize::{tokenize, tokenize_terms, Token};
