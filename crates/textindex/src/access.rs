//! Per-document access rights.
//!
//! Documents always stay at their owning peer, so the owner can restrict who may fetch
//! the full document even though its index entries are globally searchable. The paper's
//! client exposes exactly this: a document can be freely accessible or protected by a
//! username/password pair.

use serde::{Deserialize, Serialize};

/// Access policy attached to a published document.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessRights {
    /// Anyone who finds the document may fetch it.
    #[default]
    Public,
    /// Fetching the document requires the given username/password pair.
    Restricted {
        /// Required username.
        username: String,
        /// Required password (stored as a salted hash in a real deployment; the
        /// simulation keeps the comparison behaviourally equivalent).
        password: String,
    },
    /// The document is searchable but the full text is never served remotely
    /// (only its metadata/snippet is visible).
    Private,
}

/// Credentials presented when fetching a document from its hosting peer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Credentials {
    /// Username, if any.
    pub username: Option<String>,
    /// Password, if any.
    pub password: Option<String>,
}

impl Credentials {
    /// No credentials (anonymous access).
    pub fn anonymous() -> Self {
        Credentials::default()
    }

    /// Username/password credentials.
    pub fn basic(username: impl Into<String>, password: impl Into<String>) -> Self {
        Credentials {
            username: Some(username.into()),
            password: Some(password.into()),
        }
    }
}

/// The outcome of an access-control check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessDecision {
    /// The full document may be served.
    Granted,
    /// The request must be refused (bad or missing credentials).
    Denied,
    /// Only metadata (title, snippet, URL) may be served.
    MetadataOnly,
}

impl AccessRights {
    /// Decides whether a request with `credentials` may fetch the full document.
    pub fn check(&self, credentials: &Credentials) -> AccessDecision {
        match self {
            AccessRights::Public => AccessDecision::Granted,
            AccessRights::Private => AccessDecision::MetadataOnly,
            AccessRights::Restricted { username, password } => {
                let user_ok = credentials.username.as_deref() == Some(username.as_str());
                let pass_ok = credentials.password.as_deref() == Some(password.as_str());
                if user_ok && pass_ok {
                    AccessDecision::Granted
                } else {
                    AccessDecision::Denied
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_documents_are_always_granted() {
        assert_eq!(
            AccessRights::Public.check(&Credentials::anonymous()),
            AccessDecision::Granted
        );
        assert_eq!(
            AccessRights::Public.check(&Credentials::basic("u", "p")),
            AccessDecision::Granted
        );
    }

    #[test]
    fn restricted_documents_require_matching_credentials() {
        let rights = AccessRights::Restricted {
            username: "alice".into(),
            password: "s3cret".into(),
        };
        assert_eq!(
            rights.check(&Credentials::anonymous()),
            AccessDecision::Denied
        );
        assert_eq!(
            rights.check(&Credentials::basic("alice", "wrong")),
            AccessDecision::Denied
        );
        assert_eq!(
            rights.check(&Credentials::basic("bob", "s3cret")),
            AccessDecision::Denied
        );
        assert_eq!(
            rights.check(&Credentials::basic("alice", "s3cret")),
            AccessDecision::Granted
        );
    }

    #[test]
    fn private_documents_serve_metadata_only() {
        assert_eq!(
            AccessRights::Private.check(&Credentials::basic("any", "any")),
            AccessDecision::MetadataOnly
        );
    }

    #[test]
    fn default_is_public() {
        assert_eq!(AccessRights::default(), AccessRights::Public);
    }
}
