//! The positional inverted index of a peer's local collection.
//!
//! This is the "local search engine" substrate (the role Terrier plays in the original
//! prototype): it indexes the documents the peer has published, answers local queries,
//! and provides the statistics (document frequencies, document lengths) that both the
//! HDK key generator and the BM25 ranking model consume.

use crate::analyze::{Analyzer, TermOccurrence};
use crate::doc::{DocId, Document};
use crate::intern::TermId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One posting: a document containing the term, with term frequency and positions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
    /// Word positions of the occurrences (ascending).
    pub positions: Vec<u32>,
}

/// The posting list of a term, ordered by document identifier.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    /// Postings sorted by `doc`.
    pub postings: Vec<Posting>,
}

impl PostingList {
    /// Document frequency: number of documents containing the term.
    pub fn df(&self) -> usize {
        self.postings.len()
    }

    /// Looks up the posting for a document, if present.
    pub fn get(&self, doc: DocId) -> Option<&Posting> {
        self.postings
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &self.postings[i])
    }

    fn upsert(&mut self, doc: DocId, position: u32) {
        match self.postings.binary_search_by_key(&doc, |p| p.doc) {
            Ok(i) => {
                let p = &mut self.postings[i];
                p.tf += 1;
                p.positions.push(position);
            }
            Err(i) => self.postings.insert(
                i,
                Posting {
                    doc,
                    tf: 1,
                    positions: vec![position],
                },
            ),
        }
    }

    fn remove_doc(&mut self, doc: DocId) -> bool {
        match self.postings.binary_search_by_key(&doc, |p| p.doc) {
            Ok(i) => {
                self.postings.remove(i);
                true
            }
            Err(_) => false,
        }
    }
}

/// Collection-level statistics needed by the ranking model. The statistics are
/// mergeable so that the distributed ranking layer (L4) can aggregate the local
/// statistics of many peers into global values.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Number of documents.
    pub doc_count: u64,
    /// Sum of document lengths (in analyzed terms).
    pub total_terms: u64,
    /// Document frequency per term.
    pub doc_frequencies: BTreeMap<String, u64>,
}

impl CollectionStats {
    /// Average document length in analyzed terms (0 if the collection is empty).
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_count == 0 {
            0.0
        } else {
            self.total_terms as f64 / self.doc_count as f64
        }
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> u64 {
        self.doc_frequencies.get(term).copied().unwrap_or(0)
    }

    /// Merges another peer's statistics into this one.
    pub fn merge(&mut self, other: &CollectionStats) {
        self.doc_count += other.doc_count;
        self.total_terms += other.total_terms;
        for (term, df) in &other.doc_frequencies {
            *self.doc_frequencies.entry(term.clone()).or_insert(0) += df;
        }
    }

    /// Number of distinct terms with a recorded document frequency.
    pub fn vocabulary_size(&self) -> usize {
        self.doc_frequencies.len()
    }
}

/// A peer-local positional inverted index.
///
/// The vocabulary is keyed by interned [`TermId`]s: indexing a document interns
/// its analyzed terms once, and every later lookup — candidate generation,
/// posting-list scoring, intersection — moves 4-byte ids instead of strings.
/// String-based accessors remain for query-facing callers.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    analyzer: Analyzer,
    terms: HashMap<TermId, PostingList>,
    doc_lengths: HashMap<DocId, u32>,
    total_terms: u64,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        InvertedIndex::new(Analyzer::default())
    }
}

impl InvertedIndex {
    /// Creates an empty index using the given analysis pipeline.
    pub fn new(analyzer: Analyzer) -> Self {
        InvertedIndex {
            analyzer,
            terms: HashMap::new(),
            doc_lengths: HashMap::new(),
            total_terms: 0,
        }
    }

    /// The analyzer used by this index.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Indexes a document (title and body).
    pub fn index_document(&mut self, doc: &Document) {
        let text = format!("{} {}", doc.title, doc.body);
        self.index_text(doc.id, &text);
    }

    /// Indexes raw text under a document identifier. Re-indexing an existing document
    /// first removes its previous postings.
    pub fn index_text(&mut self, doc: DocId, text: &str) {
        if self.doc_lengths.contains_key(&doc) {
            self.remove_document(doc);
        }
        let occurrences = self.analyzer.analyze(text);
        let len = occurrences.len() as u32;
        self.doc_lengths.insert(doc, len);
        self.total_terms += u64::from(len);
        for TermOccurrence { term, position } in occurrences {
            self.terms
                .entry(TermId::intern(&term))
                .or_default()
                .upsert(doc, position);
        }
    }

    /// Indexes a pre-analyzed list of term occurrences (used when importing a
    /// document digest produced by an external search engine).
    pub fn index_occurrences(&mut self, doc: DocId, occurrences: &[TermOccurrence]) {
        if self.doc_lengths.contains_key(&doc) {
            self.remove_document(doc);
        }
        let len = occurrences.len() as u32;
        self.doc_lengths.insert(doc, len);
        self.total_terms += u64::from(len);
        for TermOccurrence { term, position } in occurrences {
            self.terms
                .entry(TermId::intern(term))
                .or_default()
                .upsert(doc, *position);
        }
    }

    /// Removes a document from the index.
    pub fn remove_document(&mut self, doc: DocId) -> bool {
        let Some(len) = self.doc_lengths.remove(&doc) else {
            return false;
        };
        self.total_terms -= u64::from(len);
        self.terms.retain(|_, list| {
            list.remove_doc(doc);
            !list.postings.is_empty()
        });
        true
    }

    /// The posting list of a term, if any document contains it.
    pub fn postings(&self, term: &str) -> Option<&PostingList> {
        self.terms.get(&TermId::get(term)?)
    }

    /// The posting list of an interned term, if any document contains it.
    pub fn postings_id(&self, term: TermId) -> Option<&PostingList> {
        self.terms.get(&term)
    }

    /// Document frequency of a term in this local collection.
    pub fn df(&self, term: &str) -> usize {
        self.postings(term).map_or(0, PostingList::df)
    }

    /// Document frequency of an interned term in this local collection.
    pub fn df_id(&self, term: TermId) -> usize {
        self.terms.get(&term).map_or(0, PostingList::df)
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Length (in analyzed terms) of a document.
    pub fn doc_len(&self, doc: DocId) -> Option<u32> {
        self.doc_lengths.get(&doc).copied()
    }

    /// Average document length in analyzed terms.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            0.0
        } else {
            self.total_terms as f64 / self.doc_lengths.len() as f64
        }
    }

    /// Iterates over the vocabulary (terms in arbitrary order).
    pub fn vocabulary(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.terms.keys().map(|id| id.as_str())
    }

    /// Iterates over the interned vocabulary (arbitrary order, no resolution).
    pub fn vocabulary_ids(&self) -> impl Iterator<Item = TermId> + '_ {
        self.terms.keys().copied()
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// All indexed document identifiers (sorted).
    pub fn documents(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self.doc_lengths.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Documents that contain **all** of the given terms (conjunctive/AND semantics),
    /// sorted by document id. This is the posting-list intersection primitive whose
    /// network cost the paper's single-term baseline cannot afford.
    pub fn intersect<S: AsRef<str>>(&self, terms: &[S]) -> Vec<DocId> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&PostingList> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.postings(t.as_ref()) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        Self::intersect_lists(lists)
    }

    /// [`InvertedIndex::intersect`] for already-interned terms.
    pub fn intersect_ids(&self, terms: &[TermId]) -> Vec<DocId> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&PostingList> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.terms.get(t) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        Self::intersect_lists(lists)
    }

    fn intersect_lists(mut lists: Vec<&PostingList>) -> Vec<DocId> {
        // Start from the shortest list and probe the others.
        lists.sort_by_key(|l| l.df());
        let (first, rest) = lists.split_first().expect("non-empty");
        first
            .postings
            .iter()
            .map(|p| p.doc)
            .filter(|doc| rest.iter().all(|l| l.get(*doc).is_some()))
            .collect()
    }

    /// Exports this peer's collection statistics (document count, lengths, document
    /// frequencies) for aggregation by the distributed ranking layer.
    pub fn collection_stats(&self) -> CollectionStats {
        CollectionStats {
            doc_count: self.doc_lengths.len() as u64,
            total_terms: self.total_terms,
            doc_frequencies: self
                .terms
                .iter()
                .map(|(t, l)| (t.as_str().to_string(), l.df() as u64))
                .collect(),
        }
    }

    /// The distinct analyzed terms of a document together with their positions,
    /// reconstructed from the inverted index, **sorted by [`TermId`]** so callers
    /// can binary-search by id. Used by the HDK key generator, which needs
    /// per-document term positions to apply its proximity-window filter.
    pub fn doc_term_positions(&self, doc: DocId) -> Vec<(TermId, Vec<u32>)> {
        let mut out: Vec<(TermId, Vec<u32>)> = self
            .terms
            .iter()
            .filter_map(|(t, l)| l.get(doc).map(|p| (*t, p.positions.clone())))
            .collect();
        out.sort_unstable_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u32) -> DocId {
        DocId::new(0, i)
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        idx.index_text(doc(0), "peer to peer text retrieval in structured networks");
        idx.index_text(
            doc(1),
            "distributed hash tables route messages between peers",
        );
        idx.index_text(doc(2), "text indexing and retrieval with inverted indexes");
        idx.index_text(doc(3), "centralized web search engines index the whole web");
        idx
    }

    #[test]
    fn indexing_builds_postings_with_positions() {
        let idx = sample_index();
        let peers = idx.postings("peer").expect("peer indexed");
        // "peer" appears twice in doc 0 and once (as "peers") in doc 1.
        assert_eq!(peers.df(), 2);
        let p0 = peers.get(doc(0)).unwrap();
        assert_eq!(p0.tf, 2);
        assert_eq!(p0.positions.len(), 2);
        assert!(p0.positions[0] < p0.positions[1]);
        assert!(peers.get(doc(3)).is_none());
    }

    #[test]
    fn df_and_doc_count() {
        let idx = sample_index();
        assert_eq!(idx.doc_count(), 4);
        assert_eq!(idx.df("retriev"), 2);
        assert_eq!(idx.df("web"), 1);
        assert_eq!(idx.df("missing"), 0);
        assert!(idx.vocabulary_size() > 10);
        assert_eq!(idx.documents().len(), 4);
    }

    #[test]
    fn doc_lengths_and_average() {
        let idx = sample_index();
        assert!(idx.doc_len(doc(0)).unwrap() >= 5);
        assert!(idx.doc_len(DocId::new(9, 9)).is_none());
        let avg = idx.avg_doc_len();
        assert!(avg > 3.0 && avg < 10.0, "avg {avg}");
    }

    #[test]
    fn reindexing_replaces_old_postings() {
        let mut idx = sample_index();
        idx.index_text(doc(0), "completely different content now");
        assert_eq!(idx.doc_count(), 4);
        assert_eq!(idx.df("peer"), 1); // only doc 1 remains
        assert!(idx.postings("differ").is_some());
    }

    #[test]
    fn removing_documents_cleans_up_terms() {
        let mut idx = sample_index();
        assert!(idx.remove_document(doc(3)));
        assert!(!idx.remove_document(doc(3)));
        assert_eq!(idx.doc_count(), 3);
        // "centralized" only appeared in doc 3, so its term disappears entirely.
        assert_eq!(idx.df("central"), 0);
        assert!(idx.vocabulary().all(|t| t != "central"));
    }

    #[test]
    fn intersection_requires_all_terms() {
        let idx = sample_index();
        let both = idx.intersect(&["text", "retriev"]);
        assert_eq!(both, vec![doc(0), doc(2)]);
        let none = idx.intersect(&["text", "messag"]);
        assert!(none.is_empty());
        assert!(idx.intersect::<&str>(&[]).is_empty());
        assert!(idx.intersect(&["nonexistent"]).is_empty());
        // The interned-id variant agrees with the string variant.
        let ids = [TermId::intern("text"), TermId::intern("retriev")];
        assert_eq!(idx.intersect_ids(&ids), both);
        assert!(idx.intersect_ids(&[]).is_empty());
    }

    #[test]
    fn collection_stats_merge() {
        let idx = sample_index();
        let mut stats = idx.collection_stats();
        assert_eq!(stats.doc_count, 4);
        assert_eq!(stats.df("retriev"), 2);
        let mut other = InvertedIndex::default();
        other.index_text(DocId::new(1, 0), "retrieval of multimedia documents");
        stats.merge(&other.collection_stats());
        assert_eq!(stats.doc_count, 5);
        assert_eq!(stats.df("retriev"), 3);
        assert!(stats.avg_doc_len() > 0.0);
        assert!(stats.vocabulary_size() >= 15);
    }

    #[test]
    fn doc_term_positions_reconstructs_forward_view() {
        let idx = sample_index();
        let terms = idx.doc_term_positions(doc(0));
        assert!(terms.iter().any(|(t, _)| t.as_str() == "peer"));
        let (_, positions) = terms.iter().find(|(t, _)| t.as_str() == "peer").unwrap();
        assert_eq!(positions.len(), 2);
        // Sorted by id so callers can binary-search.
        assert!(terms.windows(2).all(|w| w[0].0 < w[1].0));
        // Unknown document yields an empty view.
        assert!(idx.doc_term_positions(DocId::new(5, 5)).is_empty());
    }

    #[test]
    fn index_occurrences_matches_index_text() {
        let analyzer = Analyzer::default();
        let text = "query driven indexing for peer to peer retrieval";
        let occs = analyzer.analyze(text);
        let mut a = InvertedIndex::default();
        a.index_text(doc(0), text);
        let mut b = InvertedIndex::default();
        b.index_occurrences(doc(0), &occs);
        assert_eq!(a.df("queri"), b.df("queri"));
        assert_eq!(a.doc_len(doc(0)), b.doc_len(doc(0)));
        assert_eq!(a.vocabulary_size(), b.vocabulary_size());
    }

    #[test]
    fn empty_index_edge_cases() {
        let idx = InvertedIndex::default();
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        assert!(idx.postings("anything").is_none());
        assert_eq!(idx.collection_stats().avg_doc_len(), 0.0);
    }
}
