//! Property-based tests for the local search-engine substrate: analyzer and index
//! consistency, document removal, BM25 ranking sanity, and generator determinism.

use alvisp2p_textindex::bm25::{bm25_term_score, Bm25Params, Bm25Searcher};
use alvisp2p_textindex::{
    Analyzer, CorpusConfig, CorpusGenerator, DocId, InvertedIndex, QueryLogConfig,
    QueryLogGenerator, Stopwords,
};
use proptest::prelude::*;

fn doc_body() -> impl Strategy<Value = String> {
    // Small alphabet so documents share vocabulary and queries hit.
    "[a-f]{1,8}( [a-f]{1,8}){0,25}"
}

proptest! {
    #[test]
    fn removing_a_document_restores_the_previous_index(
        docs in proptest::collection::vec(doc_body(), 1..10),
        extra in doc_body(),
    ) {
        let mut with_extra = InvertedIndex::default();
        let mut without_extra = InvertedIndex::default();
        for (i, d) in docs.iter().enumerate() {
            with_extra.index_text(DocId::new(0, i as u32), d);
            without_extra.index_text(DocId::new(0, i as u32), d);
        }
        let extra_id = DocId::new(0, 999);
        with_extra.index_text(extra_id, &extra);
        with_extra.remove_document(extra_id);

        prop_assert_eq!(with_extra.doc_count(), without_extra.doc_count());
        prop_assert_eq!(with_extra.vocabulary_size(), without_extra.vocabulary_size());
        for term in without_extra.vocabulary() {
            prop_assert_eq!(with_extra.df(term), without_extra.df(term));
        }
        prop_assert!((with_extra.avg_doc_len() - without_extra.avg_doc_len()).abs() < 1e-9);
    }

    #[test]
    fn search_results_only_contain_documents_with_query_terms(
        docs in proptest::collection::vec(doc_body(), 1..12),
        query in doc_body(),
    ) {
        let analyzer = Analyzer::plain();
        let mut index = InvertedIndex::new(analyzer.clone());
        for (i, d) in docs.iter().enumerate() {
            index.index_text(DocId::new(0, i as u32), d);
        }
        let terms = analyzer.analyze_query(&query);
        let results = Bm25Searcher::new(&index).search(&terms, 100);
        for r in &results {
            prop_assert!(r.score > 0.0);
            let body = &docs[r.doc.local as usize];
            let body_terms = analyzer.analyze_distinct(body);
            prop_assert!(
                terms.iter().any(|t| body_terms.contains(t)),
                "result {:?} contains no query term", r.doc
            );
        }
        // Scores are sorted in non-increasing order.
        for w in results.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn bm25_term_score_is_monotone_in_tf_and_antitone_in_df(
        tf in 1u32..50,
        doc_len in 1u32..1000,
        df in 1u64..999,
        doc_count in 1_000u64..100_000,
    ) {
        let p = Bm25Params::default();
        let s = bm25_term_score(tf, doc_len, 300.0, df, doc_count, p);
        let s_more_tf = bm25_term_score(tf + 1, doc_len, 300.0, df, doc_count, p);
        let s_more_df = bm25_term_score(tf, doc_len, 300.0, df * 2, doc_count, p);
        prop_assert!(s > 0.0);
        prop_assert!(s_more_tf >= s);
        prop_assert!(s_more_df <= s);
    }

    #[test]
    fn analyzer_output_is_stable_and_stopword_free(text in ".{0,200}") {
        let analyzer = Analyzer::default();
        let a = analyzer.analyze(&text);
        let b = analyzer.analyze(&text);
        prop_assert_eq!(&a, &b);
        let stopwords = Stopwords::english();
        for occ in &a {
            prop_assert!(!occ.term.is_empty());
            // Stemmed output of a stopword can coincidentally equal another word, but
            // the raw stopwords themselves must have been filtered before stemming;
            // verify none of the canonical stopwords survive unchanged.
            if stopwords.contains(&occ.term) {
                // e.g. "doing" stems to "do" which is a stopword — acceptable; what is
                // not acceptable is a bare stopword token passing through unstemmed at
                // the same position in the original text.
                let tokens = alvisp2p_textindex::tokenize(&text);
                let original = tokens.iter().find(|t| t.position == occ.position);
                if let Some(tok) = original {
                    prop_assert!(!stopwords.contains(&tok.text));
                }
            }
        }
    }

    #[test]
    fn corpus_and_query_log_generation_is_deterministic(seed: u64) {
        let cfg = CorpusConfig { num_docs: 30, vocab_size: 200, ..CorpusConfig::tiny() };
        let a = CorpusGenerator::new(cfg.clone(), seed).generate();
        let b = CorpusGenerator::new(cfg, seed).generate();
        prop_assert_eq!(a.docs.len(), b.docs.len());
        for (da, db) in a.docs.iter().zip(&b.docs) {
            prop_assert_eq!(&da.body, &db.body);
        }
        let qcfg = QueryLogConfig { num_queries: 20, distinct_queries: 10, ..Default::default() };
        let la = QueryLogGenerator::new(qcfg.clone(), seed).generate(&a);
        let lb = QueryLogGenerator::new(qcfg, seed).generate(&b);
        prop_assert_eq!(la.queries, lb.queries);
    }
}
