//! Deterministic strict-savings pin for the rank-safe threshold mode on the
//! bandwidth experiment's long-posting-list regime: head-term pair queries
//! over a capped-vocabulary corpus, where every query's pair key is activated
//! and its posting lists are long. Rank-safe execution must return results
//! bit-identical to `ThresholdMode::Off` while eliding a strictly positive
//! number of posting bytes — the measured savings `BENCH_bandwidth.json`
//! commits and `perf_guard` enforces, reproduced here at test scale.

use alvisp2p_bench::workloads;
use alvisp2p_core::plan::GreedyCost;
use alvisp2p_core::request::{QueryRequest, ThresholdMode};
use alvisp2p_core::strategy::Hdk;
use alvisp2p_textindex::DocId;
use std::sync::Arc;

#[test]
fn rank_safe_elides_bytes_on_head_term_pair_queries_without_rank_drift() {
    let seed = workloads::DEFAULT_SEED;
    let corpus = workloads::dense_corpus(300, 500, seed);
    let log = workloads::head_query_log(&corpus, 25, seed);
    let strategy = Arc::new(Hdk::new(workloads::default_hdk()));
    let mut safe = workloads::indexed_network(&corpus, strategy.clone(), 8, seed);
    let mut off = workloads::indexed_network(&corpus, strategy, 8, seed);
    let planner = GreedyCost::default();

    let mut safe_bytes = 0u64;
    let mut off_bytes = 0u64;
    let mut skipped_blocks = 0u64;
    let mut elided = 0u64;
    let mut fallbacks = 0usize;
    for (i, q) in log.queries.iter().enumerate() {
        let base = QueryRequest::new(q.text.clone())
            .from_peer(i % 8)
            .top_k(10)
            .byte_budget(4_000);
        let safe_req = base.clone().threshold_mode(ThresholdMode::RankSafe);
        let plan_s = safe.plan_with(&planner, &safe_req).unwrap();
        let s = safe.run(&plan_s, &safe_req).unwrap();
        let off_req = base.threshold_probes(false);
        let plan_o = off.plan_with(&planner, &off_req).unwrap();
        let o = off.run(&plan_o, &off_req).unwrap();

        let s_ranked: Vec<(DocId, u64)> = s
            .results
            .iter()
            .map(|r| (r.doc, r.score.to_bits()))
            .collect();
        let o_ranked: Vec<(DocId, u64)> = o
            .results
            .iter()
            .map(|r| (r.doc, r.score.to_bits()))
            .collect();
        assert_eq!(s_ranked, o_ranked, "query {i} {:?} diverged", q.text);
        assert!(s.bytes <= o.bytes, "query {i} shipped more bytes");
        safe_bytes += s.bytes;
        off_bytes += o.bytes;
        skipped_blocks += s.trace.skipped_blocks as u64;
        elided += s.trace.elided_bytes;
        fallbacks += s.rank_safe_fallbacks;
    }
    assert!(
        safe_bytes < off_bytes,
        "no strict savings: rank-safe {safe_bytes} vs off {off_bytes}"
    );
    assert!(skipped_blocks > 0, "no whole block was ever skipped");
    assert!(elided > 0, "no posting bytes were elided");
    assert_eq!(
        off_bytes - safe_bytes,
        elided,
        "the byte saving must be exactly the elided posting bytes"
    );
    // A fault-free build leaves every published maximum fresh.
    assert_eq!(fallbacks, 0, "unexpected stale-cap fallbacks");
}
