//! Asserts the interning PR's core claim at the allocator level: once the
//! vocabulary is interned, the key operations on the query/publish hot path —
//! `ring_id`, `wire_size`, `clone`, equality/ordering, subset and domination
//! checks, and construction of ≤3-term keys from warm terms — perform **zero
//! heap allocations**.
//!
//! A counting global allocator wraps the system allocator; each probe runs with
//! the count sampled before and after. The test file contains exactly one test
//! (and the harness runs it on a single thread), so no concurrent test can
//! perturb the counter.

// The one place in the workspace that needs `unsafe`: a `GlobalAlloc`
// implementation cannot be written without it. It only delegates to `System`
// and bumps a counter.
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the `GlobalAlloc`
// contract; the counter update has no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` up to three times and returns the **minimum** allocation count
/// observed.
///
/// The counter is process-wide, so rare one-off ambient allocations (test
/// harness bookkeeping on another thread, lazy runtime initialisation) can
/// land inside a measured window — observed as a couple of counts per several
/// thousand operations at a ~3% run rate. A genuine hot-path regression
/// allocates on *every* iteration (the probes below run 1 000 iterations, so
/// it would report ≥ 1 000 on every attempt); taking the minimum over retries
/// suppresses the ambient noise without weakening that invariant.
fn allocations_in(mut f: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        let n = ALLOCATIONS.load(Ordering::Relaxed) - before;
        min = min.min(n);
        if min == 0 {
            break;
        }
    }
    min
}

#[test]
fn warm_key_hot_paths_are_allocation_free() {
    use alvisp2p_core::key::TermKey;
    use alvisp2p_netsim::WireSize;
    use std::hint::black_box;

    // Warm-up: intern the vocabulary and exercise every code path once so
    // lazily-initialised state (interner tables, pad entries) exists.
    let abc = TermKey::new(["alloc-a", "alloc-b", "alloc-c"]);
    let bc = TermKey::new(["alloc-b", "alloc-c"]);
    let d = TermKey::single("alloc-d");
    black_box(abc.ring_id());
    black_box(TermKey::new(["alloc-a", "alloc-b", "alloc-c"]));
    black_box(abc.clone());
    black_box(abc.cmp(&bc));
    black_box(d.expand("alloc-a"));

    // ring_id on the query path: a cached-field copy.
    let n = allocations_in(|| {
        for _ in 0..1_000 {
            black_box(abc.ring_id());
            black_box(bc.ring_id());
        }
    });
    assert_eq!(n, 0, "ring_id allocated {n} times");

    // Wire sizing, cloning, equality, ordering, subset/domination checks.
    let n = allocations_in(|| {
        for _ in 0..1_000 {
            black_box(abc.wire_size());
            black_box(abc.clone());
            black_box(abc == bc);
            black_box(abc.cmp(&bc));
            black_box(bc.is_subset_of(&abc));
            black_box(abc.dominates(&bc));
            black_box(abc.contains("alloc-b"));
        }
    });
    assert_eq!(n, 0, "key comparison hot path allocated {n} times");

    // Constructing inline (≤ 3 term) keys over an already-interned vocabulary,
    // including the HDK expansion step.
    let n = allocations_in(|| {
        for _ in 0..1_000 {
            black_box(TermKey::new(["alloc-a", "alloc-b", "alloc-c"]));
            black_box(TermKey::single("alloc-d"));
            black_box(d.expand("alloc-a"));
        }
    });
    assert_eq!(n, 0, "warm inline key construction allocated {n} times");
}
