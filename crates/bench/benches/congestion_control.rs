//! Criterion bench for E6: the hot-spot workload with and without congestion control.
use alvisp2p_dht::congestion::{run_hotspot, CongestionConfig, HotspotScenario};
use alvisp2p_netsim::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_control");
    group.sample_size(10);
    let base = HotspotScenario {
        clients: 16,
        servers: 4,
        offered_load: 4_000.0,
        duration: SimDuration::from_secs(1),
        ..Default::default()
    };
    group.bench_function("hotspot_with_cc", |b| {
        b.iter(|| {
            black_box(run_hotspot(
                &HotspotScenario {
                    congestion: CongestionConfig::default(),
                    ..base.clone()
                },
                1,
            ))
        })
    });
    group.bench_function("hotspot_without_cc", |b| {
        b.iter(|| {
            black_box(run_hotspot(
                &HotspotScenario {
                    congestion: CongestionConfig::disabled(),
                    ..base.clone()
                },
                1,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
