//! Criterion bench for E3: HDK distributed index construction.
use alvisp2p_bench::workloads;
use alvisp2p_core::hdk::HdkConfig;
use alvisp2p_core::strategy::Hdk;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdk_index_build");
    group.sample_size(10);
    for docs in [100usize, 300] {
        let corpus = workloads::corpus(docs, 2);
        group.bench_with_input(BenchmarkId::new("build", docs), &corpus, |b, corpus| {
            b.iter(|| {
                let net = workloads::indexed_network(
                    black_box(corpus),
                    Arc::new(Hdk::new(HdkConfig {
                        df_max: 30,
                        truncation_k: 30,
                        ..Default::default()
                    })),
                    8,
                    2,
                );
                black_box(net.global_index().activated_keys())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
