//! Criterion bench for E1: query-lattice exploration (Figure 1 scenario).
use alvisp2p_bench::exp_lattice::{run, LatticeParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_exploration");
    group.sample_size(20);
    group.bench_function("figure1_query_abc", |b| {
        b.iter(|| run(black_box(&LatticeParams::default())))
    });
    group.bench_function("figure1_no_pruning", |b| {
        b.iter(|| {
            run(black_box(&LatticeParams {
                prune_below_truncated: false,
                ..Default::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
