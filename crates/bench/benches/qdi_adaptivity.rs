//! Criterion bench for E7: a QDI query stream including on-demand activations.
use alvisp2p_bench::workloads;
use alvisp2p_core::qdi::QdiConfig;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::Qdi;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let corpus = workloads::corpus(300, 5);
    let log = workloads::query_log(&corpus, 64, false, 5);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    let mut group = c.benchmark_group("qdi_adaptivity");
    group.sample_size(10);
    group.bench_function("stream_of_64_queries", |b| {
        b.iter(|| {
            let mut net = workloads::indexed_network(
                &corpus,
                Arc::new(Qdi::new(QdiConfig {
                    activation_threshold: 2,
                    truncation_k: 20,
                    ..Default::default()
                })),
                8,
                5,
            );
            for (i, q) in queries.iter().enumerate() {
                black_box(
                    net.execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
                        .unwrap(),
                );
            }
            black_box(net.qdi_report().activations)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
