//! Criterion bench for E4: end-to-end query evaluation (HDK) vs centralized reference.
use alvisp2p_bench::workloads;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::stats::overlap_at_k;
use alvisp2p_core::strategy::Hdk;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let corpus = workloads::corpus(300, 3);
    let log = workloads::query_log(&corpus, 32, false, 3);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();
    let mut net =
        workloads::indexed_network(&corpus, Arc::new(Hdk::new(workloads::default_hdk())), 16, 3);

    let mut group = c.benchmark_group("retrieval_quality");
    group.sample_size(10);
    let mut i = 0usize;
    group.bench_function("hdk_query_plus_reference_overlap", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            let outcome = net
                .execute(&QueryRequest::new(q.clone()).from_peer(i % 16))
                .unwrap();
            let reference = net.reference_search(q, 10);
            black_box(overlap_at_k(&outcome.results, &reference, 10))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
