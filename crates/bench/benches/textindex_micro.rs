//! Microbenchmarks of the local search-engine substrate: analysis, indexing, BM25.
use alvisp2p_textindex::{
    Analyzer, Bm25Searcher, CorpusConfig, CorpusGenerator, DocId, InvertedIndex,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = CorpusGenerator::new(
        CorpusConfig {
            num_docs: 500,
            ..CorpusConfig::tiny()
        },
        1,
    )
    .generate();
    let analyzer = Analyzer::default();
    let text: String = corpus.docs[0].body.clone();

    let mut group = c.benchmark_group("textindex_micro");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("analyze_document", |b| {
        b.iter(|| black_box(analyzer.analyze(black_box(&text))))
    });
    group.bench_function("index_500_documents", |b| {
        b.iter(|| {
            let mut idx = InvertedIndex::default();
            for (i, d) in corpus.docs.iter().enumerate() {
                idx.index_text(DocId::new(0, i as u32), &d.body);
            }
            black_box(idx.vocabulary_size())
        })
    });
    let mut idx = InvertedIndex::default();
    for (i, d) in corpus.docs.iter().enumerate() {
        idx.index_text(DocId::new(0, i as u32), &d.body);
    }
    let query = analyzer.analyze_query(&format!(
        "{} {}",
        corpus.vocabulary[20], corpus.vocabulary[40]
    ));
    group.bench_function("bm25_top10_search", |b| {
        b.iter(|| black_box(Bm25Searcher::new(&idx).search(black_box(&query), 10)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
