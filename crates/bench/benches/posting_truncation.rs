//! Criterion bench for E8: truncated posting-list maintenance and merging.
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_textindex::DocId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn refs(n: u32, seed: u64) -> Vec<ScoredRef> {
    (0..n)
        .map(|i| ScoredRef {
            doc: DocId::new(i % 64, i),
            score: ((i as u64 * 2654435761 + seed) % 10_000) as f64 / 100.0,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("posting_truncation");
    for k in [50usize, 500] {
        let input = refs(10_000, 1);
        group.bench_with_input(
            BenchmarkId::new("insert_10k_into_top", k),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut list = TruncatedPostingList::new(k);
                    for r in input {
                        list.insert(*r);
                    }
                    black_box(list.len())
                })
            },
        );
    }
    let a = TruncatedPostingList::from_refs(refs(2_000, 1), 200);
    let b_list = TruncatedPostingList::from_refs(refs(2_000, 99), 200);
    group.bench_function("merge_two_truncated_lists", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&b_list));
            black_box(m.full_df())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
