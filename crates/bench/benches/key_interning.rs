//! Criterion-compat microbenchmarks for the interned-key hot paths: key
//! construction, cached `ring_id`, lattice enumeration and publish throughput,
//! each against the in-bench replica of the seed's string-based key. The same
//! operations back `exp_perf` / `BENCH_perf.json`; this harness exists so
//! `cargo bench` tracks them interactively.

use alvisp2p_bench::exp_perf::legacy::LegacyTermKey;
use alvisp2p_core::global_index::GlobalIndex;
use alvisp2p_core::key::TermKey;
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_dht::DhtConfig;
use alvisp2p_textindex::{build_vocabulary, DocId};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn term_tuples(vocab: &[String], n: usize) -> Vec<Vec<&str>> {
    (0..n)
        .map(|i| {
            let a = (i * 7 + 13) % vocab.len();
            let b = (i * 31 + 101) % vocab.len();
            let c = (i * 57 + 229) % vocab.len();
            let mut t = vec![vocab[a].as_str(), vocab[b].as_str()];
            if i % 2 == 0 {
                t.push(vocab[c].as_str());
            }
            t
        })
        .collect()
}

fn bench_key_construct(c: &mut Criterion) {
    let vocab = build_vocabulary(2_000);
    let tuples = term_tuples(&vocab, 256);
    for t in &tuples {
        let _ = TermKey::new(t.iter().copied()); // warm the interner
    }
    let mut group = c.benchmark_group("key_construct");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("legacy", |b| {
        b.iter(|| {
            for t in &tuples {
                black_box(LegacyTermKey::new(t.iter().copied()).ring_id());
            }
        })
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            for t in &tuples {
                black_box(TermKey::new(t.iter().copied()).ring_id());
            }
        })
    });
    group.finish();
}

fn bench_ring_id_and_lattice(c: &mut Criterion) {
    let vocab = build_vocabulary(2_000);
    let tuples = term_tuples(&vocab, 256);
    let legacy: Vec<LegacyTermKey> = tuples
        .iter()
        .map(|t| LegacyTermKey::new(t.iter().copied()))
        .collect();
    let interned: Vec<TermKey> = tuples
        .iter()
        .map(|t| TermKey::new(t.iter().copied()))
        .collect();

    let mut group = c.benchmark_group("ring_id");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("legacy", |b| {
        b.iter(|| {
            for k in &legacy {
                black_box(k.ring_id());
            }
        })
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            for k in &interned {
                black_box(k.ring_id());
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("lattice_enum");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("legacy", |b| {
        b.iter(|| {
            for k in &legacy {
                black_box(k.all_subsets_desc().len());
            }
        })
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            for k in &interned {
                black_box(k.all_subsets_desc().len());
            }
        })
    });
    group.finish();
}

fn bench_publish(c: &mut Criterion) {
    let vocab = build_vocabulary(2_000);
    let tuples = term_tuples(&vocab, 256);
    let keys: Vec<TermKey> = tuples
        .iter()
        .map(|t| TermKey::new(t.iter().copied()))
        .collect();
    let delta = TruncatedPostingList::from_refs(
        (0..64u32).map(|i| ScoredRef {
            doc: DocId::new(0, i),
            score: f64::from(64 - i),
        }),
        64,
    );
    let mut gi = GlobalIndex::new(DhtConfig::default(), 7, 64);
    let mut group = c.benchmark_group("publish_throughput");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("interned", |b| {
        b.iter(|| {
            for (i, k) in keys.iter().enumerate() {
                black_box(gi.publish_postings(i % 64, k, &delta, 256).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_key_construct,
    bench_ring_id_and_lattice,
    bench_publish
);
criterion_main!(benches);
