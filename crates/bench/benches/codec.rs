//! Criterion-compat microbenchmarks for the posting-list wire codec:
//! encoding, full decoding and floored (block-skipping) decoding of
//! probe-response-shaped lists, plus the exact `wire_size` length computation
//! the simulator charges on every probe. The same operations back the
//! `codec_encode`/`codec_decode` arms of `exp_perf` / `BENCH_perf.json`; this
//! harness exists so `cargo bench` tracks them interactively.

use alvisp2p_core::codec;
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::DocId;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn response_list(entries: u32) -> TruncatedPostingList {
    TruncatedPostingList::from_refs(
        (0..entries).map(|i| ScoredRef {
            doc: DocId::new(i % 64, i.wrapping_mul(2_654_435_761) % 4_096),
            score: 12.0 / f64::from(i + 1) + f64::from(i % 5) * 0.05,
        }),
        entries as usize,
    )
}

fn bench_encode_decode(c: &mut Criterion) {
    for entries in [16u32, 100, 400] {
        let list = response_list(entries);
        let frame = codec::encode_list(&list, None);
        let mid_score = list.refs()[list.len() / 2].score;

        let mut group = c.benchmark_group(format!("codec/{entries}"));
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_function("encode", |b| {
            b.iter(|| black_box(codec::encode_list(&list, None)))
        });
        group.bench_function("decode", |b| {
            b.iter(|| black_box(codec::decode_list(&frame).expect("frame decodes")))
        });
        group.bench_function("decode_floored", |b| {
            b.iter(|| {
                black_box(codec::decode_list_above(&frame, mid_score).expect("frame decodes"))
            })
        });
        group.bench_function("wire_size", |b| b.iter(|| black_box(list.wire_size())));
        group.finish();
    }
}

criterion_group!(benches, bench_encode_decode);
criterion_main!(benches);
