//! Criterion bench for E2: per-query retrieval bandwidth, single-term vs HDK vs QDI.
use alvisp2p_bench::workloads;
use alvisp2p_core::request::QueryRequest;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = workloads::corpus(400, 1);
    let log = workloads::query_log(&corpus, 64, false, 1);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    let mut group = c.benchmark_group("query_bandwidth");
    group.sample_size(10);
    for (label, strategy) in workloads::all_strategies() {
        let mut net = workloads::indexed_network(&corpus, strategy, 16, 1);
        let mut i = 0usize;
        group.bench_function(format!("query/{label}"), |b| {
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(
                    net.execute(&QueryRequest::new(q.clone()).from_peer(i % 16).top_k(20))
                        .unwrap()
                        .bytes,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
