//! Criterion bench for E5: DHT lookups with hop-space vs identifier-space routing.
use alvisp2p_dht::{Dht, DhtConfig, IdDistribution, RingId, RoutingStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_lookup_hops");
    group.sample_size(30);
    for (label, strategy, dist) in [
        (
            "hopspace_uniform",
            RoutingStrategy::HopSpace,
            IdDistribution::Uniform,
        ),
        (
            "hopspace_skewed",
            RoutingStrategy::HopSpace,
            IdDistribution::Skewed(64.0),
        ),
        (
            "finger_uniform",
            RoutingStrategy::Finger,
            IdDistribution::Uniform,
        ),
        (
            "finger_skewed",
            RoutingStrategy::Finger,
            IdDistribution::Skewed(64.0),
        ),
    ] {
        let config = DhtConfig {
            strategy,
            id_distribution: dist,
            ..Default::default()
        };
        let dht: Dht<Vec<u8>> = Dht::with_peers(config, 7, 1024);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("lookup", label), &dht, |b, dht| {
            b.iter(|| {
                i += 1;
                let key = RingId::hash_u64(i);
                black_box(dht.probe_hops((i % 1024) as usize, key).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
