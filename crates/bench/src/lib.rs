//! # alvisp2p-bench
//!
//! The experiment harness of the AlvisP2P reproduction. Every behavioural figure and
//! quantitative claim of the paper maps to one experiment module (see `DESIGN.md` §4
//! and `EXPERIMENTS.md` at the workspace root):
//!
//! | experiment | paper source | module | binary |
//! |---|---|---|---|
//! | E1 | Figure 1 (query-lattice processing) | [`exp_lattice`] | `exp_lattice` |
//! | E2 | single-term retrieval traffic is unscalable; HDK/QDI bounded | [`exp_bandwidth`] | `exp_bandwidth` |
//! | E3 | number of keys / storage remains scalable | [`exp_storage`] | `exp_storage` |
//! | E4 | retrieval quality comparable to a centralized engine | [`exp_quality`] | `exp_quality` |
//! | E5 | O(log n) routing under arbitrary identifier skew | [`exp_routing`] | `exp_routing` |
//! | E6 | congestion control prevents congestion collapse | [`exp_congestion`] | `exp_congestion` |
//! | E7 | QDI adapts the index to query popularity | [`exp_qdi`] | `exp_qdi_adaptivity` |
//! | E8 | posting-list truncation bounds traffic with marginal quality loss | [`exp_truncation`] | `exp_truncation` |
//! | P1 | key/posting hot-path microbenchmarks (perf trajectory, `BENCH_perf.json`) | [`exp_perf`] | `exp_perf` |
//! | P2 | hot-key replication under Zipf traffic (per-peer p99 load, `BENCH_skew.json`) | [`exp_skew`] | `exp_skew` |
//! | P3 | per-key provenance sketches: probe pruning vs upkeep (`BENCH_sketch.json`) | [`exp_sketch`] | `exp_sketch` |
//! | P4 | fault injection: recall@10 and bytes/query under loss + crashes, by retry policy (`BENCH_faults.json`) | [`exp_faults`] | `exp_faults` |
//! | P5 | control-plane chaos: versioned publications, anti-entropy repair, frame integrity (`BENCH_chaos.json`) | [`exp_chaos`] | `exp_chaos` |
//!
//! Each module exposes a `run(...)` function returning typed rows (so integration
//! tests and Criterion benches reuse the same code) and a `print(...)` helper that
//! renders the table the corresponding binary prints. All experiments are seeded and
//! deterministic.
//!
//! Binaries honour the `ALVIS_QUICK=1` environment variable, which shrinks the sweeps
//! to a fast smoke-test configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_bandwidth;
pub mod exp_chaos;
pub mod exp_congestion;
pub mod exp_faults;
pub mod exp_lattice;
pub mod exp_perf;
pub mod exp_qdi;
pub mod exp_quality;
pub mod exp_routing;
pub mod exp_sketch;
pub mod exp_skew;
pub mod exp_storage;
pub mod exp_truncation;
pub mod table;
pub mod workloads;

/// Whether the quick (smoke-test) configuration was requested via `ALVIS_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("ALVIS_QUICK")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}
