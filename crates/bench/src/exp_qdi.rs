//! **E7 — Query-Driven Indexing adapts the index to query popularity.**
//!
//! §2 of the paper: "the processing of new queries triggers the indexing of popular
//! term combinations, which, in turn, increases the overall retrieval quality. At the
//! same time, obsolete keys can be removed, resulting in an efficient indexing
//! structure adaptive to the current query popularity distribution."
//!
//! The experiment replays a Zipfian query log (optionally with a popularity drift half
//! way through) against a QDI network and reports, per window of queries: the overlap
//! with the centralized reference, the retrieval bytes per query, the number of
//! activated multi-term keys, the cumulative activations and evictions. Expected
//! shape: quality rises and bytes/query falls as popular combinations get indexed;
//! after the drift the index turns over (evictions rise, new activations appear) and
//! quality recovers.

use alvisp2p_core::qdi::QdiConfig;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::stats::{mean, overlap_at_k};
use alvisp2p_core::strategy::Qdi;
use serde::Serialize;
use std::sync::Arc;

use crate::table::{fmt_bytes, fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// One row (one query window) of the E7 output.
#[derive(Clone, Debug, Serialize)]
pub struct QdiRow {
    /// Number of queries processed up to the end of this window.
    pub queries: usize,
    /// Mean overlap@10 with the centralized reference inside the window.
    pub overlap_at_10: f64,
    /// Mean retrieval bytes per query inside the window.
    pub bytes_per_query: f64,
    /// Activated multi-term keys at the end of the window.
    pub active_multi_keys: usize,
    /// Cumulative on-demand activations.
    pub activations: u64,
    /// Cumulative evictions of obsolete keys.
    pub evictions: u64,
    /// Whether the popularity drift has already happened at this point.
    pub after_drift: bool,
    /// Aggregated robustness counters inside the window (all zeros under
    /// `NoFaults`).
    pub robustness: Robustness,
}

/// Parameters of the QDI adaptivity experiment.
#[derive(Clone, Debug, Serialize)]
pub struct QdiParams {
    /// Number of documents.
    pub docs: usize,
    /// Number of peers.
    pub peers: usize,
    /// Length of the query log.
    pub queries: usize,
    /// Window size for reporting.
    pub window: usize,
    /// Whether query popularity drifts half way through the log.
    pub drift: bool,
    /// QDI configuration.
    pub qdi: QdiConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for QdiParams {
    fn default() -> Self {
        QdiParams {
            docs: 2_000,
            peers: 32,
            queries: 1_600,
            window: 200,
            drift: true,
            qdi: QdiConfig {
                activation_threshold: 3,
                truncation_k: 50,
                obsolescence_window: 400,
                eviction_period: 100,
                ..Default::default()
            },
            seed: DEFAULT_SEED,
        }
    }
}

impl QdiParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        QdiParams {
            docs: 250,
            peers: 8,
            queries: 240,
            window: 60,
            ..Default::default()
        }
    }
}

/// Runs the E7 query stream and reports one row per window.
pub fn run(params: &QdiParams) -> Vec<QdiRow> {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::query_log(&corpus, params.queries, params.drift, params.seed);
    let mut net = workloads::indexed_network(
        &corpus,
        Arc::new(Qdi::new(params.qdi.clone())),
        params.peers,
        params.seed,
    );

    let mut rows = Vec::new();
    let mut window_overlap = Vec::new();
    let mut window_bytes = Vec::new();
    let mut window_robustness = Robustness::default();
    let drift_point = params.queries / 2;
    for (i, q) in log.queries.iter().enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.text.clone()).from_peer(i % params.peers))
            .expect("query succeeds");
        window_robustness.observe(&outcome);
        let reference = net.reference_search(&q.text, 10);
        window_overlap.push(overlap_at_k(&outcome.results, &reference, 10));
        window_bytes.push(outcome.bytes as f64);
        if (i + 1) % params.window == 0 || i + 1 == log.len() {
            let report = net.qdi_report();
            let active_multi = net
                .global_index()
                .activated_key_list()
                .iter()
                .filter(|k| k.len() > 1)
                .count();
            rows.push(QdiRow {
                queries: i + 1,
                overlap_at_10: mean(&window_overlap),
                bytes_per_query: mean(&window_bytes),
                active_multi_keys: active_multi,
                activations: report.activations,
                evictions: report.evictions,
                after_drift: params.drift && (i + 1) > drift_point,
                robustness: window_robustness,
            });
            window_overlap.clear();
            window_bytes.clear();
            window_robustness = Robustness::default();
        }
    }
    rows
}

/// Prints the E7 table.
pub fn print(rows: &[QdiRow]) {
    let mut t = Table::new(
        "E7: QDI adaptivity over the query stream (popularity drift at the midpoint)",
        &[
            "queries",
            "overlap@10",
            "bytes/query",
            "active multi keys",
            "activations",
            "evictions",
            "phase",
        ],
    );
    for r in rows {
        t.row(&[
            r.queries.to_string(),
            fmt_f(r.overlap_at_10, 3),
            fmt_bytes(r.bytes_per_query as u64),
            r.active_multi_keys.to_string(),
            r.activations.to_string(),
            r.evictions.to_string(),
            if r.after_drift {
                "after drift"
            } else {
                "before drift"
            }
            .to_string(),
        ]);
    }
    t.print();
    let mut robustness = Robustness::default();
    for r in rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popular_combinations_get_activated_over_the_stream() {
        let params = QdiParams {
            docs: 200,
            peers: 8,
            queries: 160,
            window: 40,
            drift: false,
            qdi: QdiConfig {
                activation_threshold: 2,
                truncation_k: 10,
                ..Default::default()
            },
            seed: 5,
        };
        let rows = run(&params);
        assert_eq!(rows.len(), 4);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.activations > 0, "no activations happened: {last:?}");
        assert!(last.active_multi_keys >= first.active_multi_keys);
        // Quality does not degrade as the index adapts.
        assert!(last.overlap_at_10 >= first.overlap_at_10 - 0.05);
    }

    #[test]
    fn drift_triggers_evictions_of_obsolete_keys() {
        let params = QdiParams {
            docs: 200,
            peers: 8,
            queries: 300,
            window: 75,
            drift: true,
            qdi: QdiConfig {
                activation_threshold: 2,
                truncation_k: 10,
                obsolescence_window: 80,
                eviction_period: 25,
                ..Default::default()
            },
            seed: 6,
        };
        let rows = run(&params);
        let last = rows.last().unwrap();
        assert!(last.activations > 0);
        assert!(
            last.evictions > 0,
            "drift should make earlier popular keys obsolete: {rows:?}"
        );
    }
}
