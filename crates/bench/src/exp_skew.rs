//! **P2 — Skew-aware hot-key replication under Zipf traffic: per-peer load,
//! tail latency and bytes per query, with and without replication.**
//!
//! A Zipf-distributed query log concentrates probes on the few keys of the
//! most popular queries; without replication the peers responsible for those
//! keys serve a disproportionate share of all probes. This experiment runs the
//! identical seeded workload twice — once with [`NoReplication`], once with
//! [`HotKeyReplication`] — and measures what the replication subsystem
//! (`alvisp2p_dht::replica`) buys and what it costs:
//!
//! * **per-peer probe-serve load** (mean / p99 / max of served requests per
//!   peer) — the headline claim is the p99 reduction;
//! * **tail latency** under a simple queueing model: a probe's latency is its
//!   overlay hop count plus half the serving peer's current queue depth
//!   (queues drain geometrically between queries);
//! * **retrieval bytes per query** (must be identical across arms — replication
//!   never changes what a probe answers) and **overlay maintenance bytes per
//!   query** (what placing, syncing and withdrawing replica copies costs);
//! * **top-k equality**: every query's ranked answer must be byte-identical
//!   across arms;
//! * a **churn arm**: fail the primary of the hottest replicated key and
//!   verify the key is recovered from its replicas, then join fresh peers and
//!   verify the replica placement re-converges onto the new ring successors.
//!
//! Results go to `BENCH_skew.json` (`ALVIS_BENCH_OUT` overrides the path).

use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::Hdk;
use alvisp2p_dht::{HotKeyReplication, NoReplication, ReplicationPolicy, RingId};
use alvisp2p_netsim::TrafficCategory;
use alvisp2p_textindex::{DocId, SyntheticCorpus};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::table::{fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// Parameters of the skew experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkewParams {
    /// Peers in the overlay.
    pub peers: usize,
    /// Documents in the corpus.
    pub docs: usize,
    /// Query instances in the Zipf log.
    pub queries: usize,
    /// Zipf exponent of query popularity (higher = more concentrated).
    pub zipf_s: f64,
    /// Replication factor of the hot-key arm.
    pub factor: usize,
    /// EWMA load above which a key replicates.
    pub hot_threshold: f64,
    /// EWMA load below which a replicated key withdraws.
    pub cool_threshold: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SkewParams {
    fn default() -> Self {
        SkewParams {
            peers: 48,
            docs: 1_500,
            queries: 3_000,
            zipf_s: 1.1,
            factor: 3,
            hot_threshold: 1.5,
            cool_threshold: 0.25,
            seed: DEFAULT_SEED,
        }
    }
}

impl SkewParams {
    /// Fast smoke-test configuration (`ALVIS_QUICK=1` / `--quick`).
    pub fn quick() -> Self {
        SkewParams {
            peers: 16,
            docs: 300,
            queries: 600,
            ..Default::default()
        }
    }

    fn policy(&self) -> Arc<dyn ReplicationPolicy> {
        Arc::new(HotKeyReplication {
            factor: self.factor,
            hot_threshold: self.hot_threshold,
            cool_threshold: self.cool_threshold,
            ..HotKeyReplication::new(self.factor)
        })
    }
}

/// One measured arm of the skew experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkewRow {
    /// Replication policy label (`none`, `hot-key(f=3)`).
    pub arm: String,
    /// Mean probe-serve load per live peer.
    pub mean_load: f64,
    /// 99th-percentile probe-serve load per live peer.
    pub p99_load: f64,
    /// Maximum probe-serve load of any peer.
    pub max_load: u64,
    /// Mean per-query latency under the queueing model.
    pub mean_latency: f64,
    /// 99th-percentile per-query latency under the queueing model.
    pub p99_latency: f64,
    /// Retrieval bytes per query (identical across arms by construction).
    pub bytes_per_query: f64,
    /// Overlay-maintenance bytes per query (replica placement/sync/withdraw).
    pub overlay_bytes_per_query: f64,
    /// Keys that crossed the replication threshold.
    pub replications: u64,
    /// Probes served by a replica instead of the primary.
    pub replica_serves: u64,
    /// Whether every query's top-k equals the `none` arm's answer.
    pub identical_topk: bool,
    /// Aggregated robustness counters (all zeros under `NoFaults`; defaulted
    /// when reading reports written before the field existed).
    #[serde(default)]
    pub robustness: Robustness,
}

/// The churn arm: fail the hottest key's primary, then re-grow the ring.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// Keys the overlay reported lost when the primary failed (replicated keys
    /// recovered from their holders are not counted).
    pub lost_on_failure: usize,
    /// Replicated keys recovered from replica holders during the failure.
    pub recovered_keys: u64,
    /// The hottest key survived its primary's failure and still answers.
    pub hot_key_survived: bool,
    /// After two fresh joins, every replicated key's holders are exactly its
    /// current ring-successor targets again.
    pub reconverged: bool,
}

/// The `BENCH_skew.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkewReport {
    /// Experiment identifier.
    pub bench: String,
    /// Whether the quick configuration ran.
    pub quick: bool,
    /// Parameters used.
    pub params: SkewParams,
    /// Measured arms.
    pub rows: Vec<SkewRow>,
    /// p99 per-peer load of the `none` arm over the hot-key arm (the headline
    /// reduction factor).
    pub p99_reduction: f64,
    /// The churn arm's outcome (runs on the hot-key network).
    pub churn: ChurnOutcome,
}

fn network(
    corpus: &SyntheticCorpus,
    policy: Arc<dyn ReplicationPolicy>,
    params: &SkewParams,
) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(params.peers)
        .strategy(Hdk::new(workloads::default_hdk()))
        .replication(policy)
        .seed(params.seed)
        .corpus(corpus)
        .build_indexed()
        .expect("experiment network configuration is valid")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).ceil() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the query phase of one arm and returns its row plus the per-query
/// top-k answers (for cross-arm equality) and the network (for the churn arm).
fn run_arm(
    arm: &str,
    policy: Arc<dyn ReplicationPolicy>,
    corpus: &SyntheticCorpus,
    queries: &[String],
    params: &SkewParams,
) -> (SkewRow, Vec<Vec<(DocId, u64)>>, AlvisNetwork) {
    let mut net = network(corpus, policy, params);
    let slots = net.global_index().dht().peer_slots();
    let served_before: Vec<u64> = (0..slots)
        .map(|i| net.global_index().dht().peer(i).served_requests)
        .collect();
    let stats_before = net.global_index().stats_snapshot();

    // Queueing model: each probe waits behind half the serving peer's current
    // queue; queues drain geometrically between queries.
    let mut queue = vec![0.0f64; slots];
    let mut latencies = Vec::with_capacity(queries.len());
    let mut answers = Vec::with_capacity(queries.len());
    let mut robustness = Robustness::default();
    for (i, text) in queries.iter().enumerate() {
        let request = QueryRequest::new(text.clone())
            .from_peer(i % params.peers)
            .top_k(10);
        let plan = net.plan(&request).expect("plan succeeds");
        let mut stream = net.stream(plan, request).expect("stream starts");
        let mut latency = 0.0f64;
        while let Some(event) = stream.next_event() {
            let event = event.expect("probe succeeds");
            latency += event.hops as f64 + 0.5 * queue[event.served_by];
            queue[event.served_by] += 1.0;
        }
        let response = stream.finish().expect("query succeeds");
        robustness.observe(&response);
        latencies.push(latency);
        answers.push(
            response
                .results
                .iter()
                .map(|r| (r.doc, r.score.to_bits()))
                .collect(),
        );
        for q in &mut queue {
            *q *= 0.98;
        }
    }

    let spent = net.global_index().stats_snapshot().since(&stats_before);
    let mut loads: Vec<f64> = net
        .global_index()
        .dht()
        .live_peer_indices()
        .into_iter()
        .map(|i| (net.global_index().dht().peer(i).served_requests - served_before[i]) as f64)
        .collect();
    loads.sort_by(f64::total_cmp);
    latencies.sort_by(f64::total_cmp);
    let n = queries.len() as f64;
    let stats = net.global_index().dht().replication().stats();
    let row = SkewRow {
        arm: arm.to_string(),
        mean_load: loads.iter().sum::<f64>() / loads.len() as f64,
        p99_load: percentile(&loads, 0.99),
        max_load: *loads.last().unwrap() as u64,
        mean_latency: latencies.iter().sum::<f64>() / n,
        p99_latency: percentile(&latencies, 0.99),
        bytes_per_query: spent.category(TrafficCategory::Retrieval).bytes as f64 / n,
        overlay_bytes_per_query: spent.category(TrafficCategory::Overlay).bytes as f64 / n,
        replications: stats.replications,
        replica_serves: stats.replica_serves,
        identical_topk: true, // filled in by the caller for the non-baseline arm
        robustness,
    };
    (row, answers, net)
}

/// Fails the hottest replicated key's primary, verifies recovery from the
/// replicas, then joins fresh peers and verifies the placement re-converges.
fn run_churn(net: &mut AlvisNetwork, params: &SkewParams) -> ChurnOutcome {
    let dht = net.global_index_mut().dht_mut();
    let hottest = dht
        .replication()
        .replicated_key_list()
        .into_iter()
        .max_by(|a, b| {
            dht.replication()
                .key_load(*a)
                .total_cmp(&dht.replication().key_load(*b))
        });
    let Some(hot_key) = hottest else {
        return ChurnOutcome {
            lost_on_failure: 0,
            recovered_keys: 0,
            hot_key_survived: false,
            reconverged: false,
        };
    };
    let recovered_before = dht.replication().stats().recovered;
    let primary = dht.responsible_for(hot_key).expect("live overlay");
    let lost = dht.fail(primary).expect("failing one peer is survivable");
    let recovered_keys = dht.replication().stats().recovered - recovered_before;
    // The hot key must have moved to the new responsible peer and still answer.
    let new_primary = dht.responsible_for(hot_key).expect("live overlay");
    let origin = dht
        .live_peer_indices()
        .into_iter()
        .find(|&i| i != new_primary)
        .unwrap_or(new_primary);
    let (_, value) = dht
        .get(origin, hot_key, TrafficCategory::Retrieval)
        .expect("routed get succeeds");
    let hot_key_survived = value.is_some();
    // Re-grow the ring: replica placement must follow the new successor sets.
    for i in 0..2u64 {
        let _ = dht.join(RingId::hash_u64(params.seed ^ (0xbeef + i)));
    }
    let factor = dht.replication().policy().replication_factor();
    let reconverged = dht.replication().replicated_key_list().iter().all(|&key| {
        let mut holders = dht.replica_holders(key);
        let mut targets = dht.replica_targets(key, factor);
        holders.sort_unstable();
        targets.sort_unstable();
        holders == targets && !holders.is_empty()
    });
    ChurnOutcome {
        lost_on_failure: lost,
        recovered_keys,
        hot_key_survived,
        reconverged,
    }
}

/// Runs both arms on the identical seeded workload, compares their answers and
/// runs the churn arm on the replicated network.
pub fn run(params: &SkewParams) -> SkewReport {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::zipf_query_log(&corpus, params.queries, params.zipf_s, params.seed);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    let (baseline_row, baseline_answers, _) =
        run_arm("none", Arc::new(NoReplication), &corpus, &queries, params);
    let label = format!("hot-key(f={})", params.factor);
    let (mut replicated_row, replicated_answers, mut net) =
        run_arm(&label, params.policy(), &corpus, &queries, params);
    replicated_row.identical_topk = baseline_answers == replicated_answers;

    let p99_reduction = baseline_row.p99_load / replicated_row.p99_load.max(1e-9);
    let churn = run_churn(&mut net, params);
    SkewReport {
        bench: "skew".to_string(),
        quick: false,
        params: params.clone(),
        rows: vec![baseline_row, replicated_row],
        p99_reduction,
        churn,
    }
}

/// Prints the result tables.
pub fn print(report: &SkewReport) {
    let mut table = Table::new(
        "P2: per-peer probe load and latency under Zipf traffic (with/without hot-key replication)",
        &[
            "arm",
            "mean load",
            "p99 load",
            "max load",
            "mean lat",
            "p99 lat",
            "bytes/q",
            "overlay B/q",
            "replicas",
            "topk=",
        ],
    );
    for r in &report.rows {
        table.row(&[
            r.arm.clone(),
            fmt_f(r.mean_load, 1),
            fmt_f(r.p99_load, 1),
            r.max_load.to_string(),
            fmt_f(r.mean_latency, 1),
            fmt_f(r.p99_latency, 1),
            fmt_f(r.bytes_per_query, 0),
            fmt_f(r.overlay_bytes_per_query, 1),
            r.replications.to_string(),
            if r.identical_topk { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "p99 per-peer load reduction: {:.2}x | churn: lost {} on primary failure, \
         recovered {} from replicas, hot key survived: {}, re-converged after joins: {}",
        report.p99_reduction,
        report.churn.lost_on_failure,
        report.churn.recovered_keys,
        report.churn.hot_key_survived,
        report.churn.reconverged,
    );
    let mut robustness = Robustness::default();
    for r in &report.rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SkewParams {
        SkewParams {
            peers: 12,
            docs: 120,
            queries: 180,
            ..SkewParams::default()
        }
    }

    #[test]
    fn skew_smoke_replicates_and_preserves_answers() {
        let report = run(&tiny());
        assert_eq!(report.rows.len(), 2);
        let baseline = &report.rows[0];
        let replicated = &report.rows[1];
        assert_eq!(baseline.replications, 0);
        assert!(replicated.replications > 0, "no key ever replicated");
        assert!(replicated.replica_serves > 0, "replicas never served");
        assert!(replicated.identical_topk, "replication changed an answer");
        // Retrieval accounting is policy-independent; the replication cost
        // shows up in the overlay category only.
        assert!((baseline.bytes_per_query - replicated.bytes_per_query).abs() < 1e-9);
        assert!(replicated.overlay_bytes_per_query > baseline.overlay_bytes_per_query);
        assert!(report.p99_reduction > 1.0, "replication did not shed load");
        assert!(report.churn.hot_key_survived);
        assert!(report.churn.reconverged);
    }

    #[test]
    #[ignore = "full-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn replication_halves_p99_load_at_full_scale() {
        // The acceptance bar: p99 per-peer probe load reduced at least 2x at
        // unchanged top-k answers, and the churn arm re-converges.
        let report = run(&SkewParams::default());
        assert!(
            report.p99_reduction >= 2.0,
            "p99 reduction {:.2}x below the 2x acceptance bar",
            report.p99_reduction
        );
        assert!(report.rows[1].identical_topk);
        assert!(report.churn.hot_key_survived);
        assert!(report.churn.reconverged);
    }
}
