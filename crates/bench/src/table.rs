//! Plain-text table rendering for experiment output.
//!
//! The binaries print the same rows/series the paper's evaluation discusses; this
//! helper keeps the formatting consistent and also offers a JSON dump so results can
//! be post-processed (e.g. plotted) without re-running the experiment.

use alvisp2p_core::request::QueryResponse;
use serde::{Deserialize, Serialize};

/// Aggregated robustness counters over a batch of query responses.
///
/// Every experiment that executes queries feeds its responses through
/// [`Robustness::observe`] and prints the [`Robustness::summary`] line after
/// its table, so fault-tolerance activity (or its absence — all zeros under
/// `NoFaults`) is visible in every experiment's output, not only in
/// `exp_faults`.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Robustness {
    /// Queries observed.
    pub queries: u64,
    /// Probe attempts beyond the first, summed over all queries.
    pub retries: u64,
    /// Probes that exhausted their retry budget and were recorded as failed.
    pub failed_probes: u64,
    /// Probes served by a non-primary holder after failover.
    pub hedged: u64,
    /// Probe responses discarded because their frame failed checksum
    /// verification (`#[serde(default)]` so reports committed before the
    /// counter existed still parse).
    #[serde(default)]
    pub corrupt_probes: u64,
    /// Sum of per-query completeness fractions (divide by `queries`).
    pub completeness_sum: f64,
}

impl Robustness {
    /// Folds one query response into the counters.
    pub fn observe(&mut self, response: &QueryResponse) {
        self.queries += 1;
        self.retries += response.retries as u64;
        self.failed_probes += response.failed_probes as u64;
        self.hedged += response.hedged as u64;
        self.corrupt_probes += response.corrupt_probes as u64;
        self.completeness_sum += response.completeness.fraction();
    }

    /// Folds another accumulator in (for summarising across arms/rows).
    pub fn absorb(&mut self, other: &Robustness) {
        self.queries += other.queries;
        self.retries += other.retries;
        self.failed_probes += other.failed_probes;
        self.hedged += other.hedged;
        self.corrupt_probes += other.corrupt_probes;
        self.completeness_sum += other.completeness_sum;
    }

    /// Mean completeness fraction over the observed queries (1.0 if none).
    pub fn mean_completeness(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.completeness_sum / self.queries as f64
        }
    }

    /// The one-line summary the experiments print after their tables.
    pub fn summary(&self) -> String {
        format!(
            "robustness: {} retries, {} failed probes, {} hedged serves, \
             {} corrupt frames, mean completeness {:.3} over {} queries",
            self.retries,
            self.failed_probes,
            self.hedged,
            self.corrupt_probes,
            self.mean_completeness(),
            self.queries
        )
    }

    /// Prints the summary line to stdout.
    pub fn print(&self) {
        println!("{}", self.summary());
    }
}

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (each cell already formatted).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:>width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Serialises experiment rows to pretty JSON (printed after the table when the
/// `ALVIS_JSON=1` environment variable is set).
pub fn maybe_print_json<T: Serialize>(rows: &T) {
    let wanted = std::env::var("ALVIS_JSON")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    if wanted {
        match serde_json::to_string_pretty(rows) {
            Ok(json) => println!("{json}"),
            Err(e) => eprintln!("failed to serialise results: {e}"),
        }
    }
}

/// Formats a byte count with a thousands separator for readability.
pub fn fmt_bytes(bytes: u64) -> String {
    let s = bytes.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().rev().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out.chars().rev().collect()
}

/// Formats a float with the given number of decimals.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(&["1".into(), "short".into()]);
        t.row(&["1000".into(), "a much longer cell".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("n"));
        assert!(r.contains("a much longer cell"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Each data line has the same length (alignment).
        let lines: Vec<&str> = r.lines().skip(3).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn byte_formatting_inserts_separators() {
        assert_eq!(fmt_bytes(0), "0");
        assert_eq!(fmt_bytes(999), "999");
        assert_eq!(fmt_bytes(1_000), "1,000");
        assert_eq!(fmt_bytes(1_234_567), "1,234,567");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(1.0, 0), "1");
    }
}
