//! **P5 — Control-plane chaos: versioned publications, anti-entropy repair
//! and frame integrity under combined faults.**
//!
//! P4 (`exp_faults`) established that the *data plane* — probes — survives
//! message loss and crashed peers via retries and replica failover. This
//! experiment injects faults into the **control plane** as well and measures
//! whether the recovery machinery of this PR actually converges the system
//! back, or whether the degradation is permanent:
//!
//! * **publish loss** — a fraction of index publications vanish in flight
//!   during construction; the publisher queues them as un-acked and re-sends
//!   on a bounded-backoff schedule ([`AlvisNetwork::republish_round`]);
//! * **replica-sync loss** — a fraction of replica synchronisation messages
//!   vanish, leaving stale copies on holders;
//! * **bit rot** — a handful of replica copies are corrupted in place
//!   (detected by anti-entropy checksum digests, never served silently);
//! * **probe loss + frame corruption + crashes** — the P4 data-plane faults,
//!   plus a per-response bit-flip rate the codec's checksum trailer turns
//!   into typed [`ProbeOutcome::Corrupt`](alvisp2p_core::fault::ProbeOutcome)
//!   retries.
//!
//! Two arms run under the *identical* seeded fault plane:
//!
//! * **repair** — re-publication rounds drain the un-acked queue and
//!   anti-entropy repair rounds ([`AlvisNetwork::repair_round`]) run
//!   interleaved with the query stream;
//! * **no-repair** — the same faults with the recovery machinery disabled:
//!   lost publications stay lost, stale/corrupt copies stay divergent.
//!
//! Reported per arm: mean recall@10 against the fault-free answers, bytes
//! per query, the robustness counters (now including corrupt frames), the
//! final replica-consistency fraction and the number of publications still
//! un-acked. The acceptance bar: the repair arm restores replica consistency
//! to 1.0 and recall@10 to ≥ 0.95 of fault-free, while the no-repair arm
//! shows a non-vacuous gap on both. `perf_guard` enforces exactly that on the
//! committed and fresh reports.
//!
//! Results go to `BENCH_chaos.json` (`ALVIS_BENCH_OUT` overrides the path).

use alvisp2p_core::fault::{FaultPlane, RetryPolicy};
use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::Hdk;
use alvisp2p_dht::{HotKeyReplication, ReplicationPolicy};
use alvisp2p_textindex::{DocId, SyntheticCorpus};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::exp_faults::crash_targets;
use crate::table::{fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// Parameters of the control-plane chaos experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosParams {
    /// Peers in the overlay.
    pub peers: usize,
    /// Documents in the corpus.
    pub docs: usize,
    /// Query instances in the Zipf log (run once to warm, once to measure).
    pub queries: usize,
    /// Zipf exponent of query popularity.
    pub zipf_s: f64,
    /// Replication factor of the hot-key policy.
    pub factor: usize,
    /// Per-message probe loss probability.
    pub probe_loss: f64,
    /// Per-publication loss probability (index construction + re-sends).
    pub publish_loss: f64,
    /// Per-response frame bit-flip probability.
    pub corrupt_rate: f64,
    /// Per-message replica-sync loss probability.
    pub sync_loss: f64,
    /// Peers crashed for the whole measurement phase.
    pub crashes: usize,
    /// Replica copies corrupted in place after the warm-up (bit rot).
    pub rotted_copies: usize,
    /// Repair arm: a re-publication + repair round runs every this many
    /// measurement queries.
    pub repair_every: usize,
    /// Master seed (drives corpus, log, network and fault decisions).
    pub seed: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            peers: 32,
            docs: 800,
            queries: 400,
            zipf_s: 1.1,
            factor: 3,
            probe_loss: 0.10,
            publish_loss: 0.20,
            corrupt_rate: 0.01,
            sync_loss: 0.20,
            crashes: 2,
            rotted_copies: 4,
            repair_every: 20,
            seed: DEFAULT_SEED,
        }
    }
}

impl ChaosParams {
    /// Fast smoke-test configuration (`ALVIS_QUICK=1` / `--quick`). Keeps the
    /// full fault mix so `perf_guard` can enforce the same invariants on a
    /// quick run.
    pub fn quick() -> Self {
        ChaosParams {
            peers: 16,
            docs: 250,
            queries: 160,
            rotted_copies: 3,
            ..Default::default()
        }
    }

    fn policy(&self) -> Arc<dyn ReplicationPolicy> {
        Arc::new(HotKeyReplication::new(self.factor))
    }

    /// The combined fault plane (without the crash set, which is picked from
    /// the warmed replication state).
    fn plane(&self) -> FaultPlane {
        FaultPlane::seeded(self.seed)
            .with_loss(self.probe_loss)
            .with_corruption(self.corrupt_rate)
            .with_publish_loss(self.publish_loss)
            .with_sync_loss(self.sync_loss)
    }
}

/// One measured arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Arm label (`fault-free`, `repair`, `no-repair`).
    pub arm: String,
    /// Mean recall@10 against the fault-free answers.
    pub recall_at_10: f64,
    /// Bytes per query, retry and hedge traffic included.
    pub bytes_per_query: f64,
    /// Fraction of replica copies on live holders consistent with their
    /// primary at the end of the measurement phase.
    pub replica_consistency: f64,
    /// Publications still un-acked at the end of the measurement phase.
    pub pending_publishes: usize,
    /// Overlay bytes spent during the measurement phase (re-publication,
    /// digest exchanges and repair pulls land here).
    pub overlay_bytes: u64,
    /// Aggregated robustness counters over the measurement queries.
    pub robustness: Robustness,
}

/// The `BENCH_chaos.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Experiment identifier.
    pub bench: String,
    /// Whether the quick configuration ran.
    pub quick: bool,
    /// Parameters used.
    pub params: ChaosParams,
    /// Bytes per query of the fault-free reference run.
    pub fault_free_bytes_per_query: f64,
    /// Measured arms (`repair` first, then `no-repair`).
    pub rows: Vec<ChaosRow>,
    /// recall@10 of the repair arm.
    pub repair_recall: f64,
    /// recall@10 of the no-repair arm.
    pub no_repair_recall: f64,
    /// Final replica consistency of the repair arm.
    pub repair_consistency: f64,
    /// Final replica consistency of the no-repair arm.
    pub no_repair_consistency: f64,
    /// Un-acked publications left by the repair arm (should be 0).
    pub repair_pending: usize,
    /// Un-acked publications left by the no-repair arm (the lost ones).
    pub no_repair_pending: usize,
    /// Repair-arm bytes/query over fault-free bytes/query.
    pub repair_byte_overhead: f64,
}

fn network(corpus: &SyntheticCorpus, params: &ChaosParams) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(params.peers)
        .strategy(Hdk::new(workloads::default_hdk()))
        .replication(params.policy())
        .retry_policy(RetryPolicy::default())
        .seed(params.seed)
        .corpus(corpus)
        .build()
        .expect("experiment network configuration is valid")
}

/// Runs the full log once to heat the replication tracker (identically in
/// both chaos arms — the plane is identical and seeded).
fn warm(net: &mut AlvisNetwork, queries: &[String], params: &ChaosParams) {
    for (i, text) in queries.iter().enumerate() {
        let request = QueryRequest::new(text.clone())
            .from_peer(i % params.peers)
            .top_k(10);
        net.execute(&request).expect("warm-up query succeeds");
    }
}

/// Corrupts up to `count` replica copies in place (bit rot), one holder copy
/// per hottest replicated key, skipping crashed holders. Deterministic — the
/// warmed replication state is identical across arms.
fn rot_copies(net: &mut AlvisNetwork, count: usize, crashed: &[usize]) -> usize {
    let mut victims = Vec::new();
    {
        let dht = net.global_index().dht();
        let mut keys = dht.replication().replicated_key_list();
        keys.sort_by(|a, b| {
            dht.replication()
                .key_load(*b)
                .total_cmp(&dht.replication().key_load(*a))
                .then(a.cmp(b))
        });
        for key in keys {
            if victims.len() >= count {
                break;
            }
            if let Some(holder) = dht
                .replica_holders(key)
                .into_iter()
                .find(|h| !crashed.contains(h))
            {
                victims.push((key, holder));
            }
        }
    }
    let dht = net.global_index_mut().dht_mut();
    victims
        .into_iter()
        .filter(|(key, holder)| dht.corrupt_replica_copy(*key, *holder))
        .count()
}

/// Runs one arm: build under the plane, warm, crash, rot, then measure with
/// (or without) the recovery machinery.
fn run_arm(
    arm: &str,
    corpus: &SyntheticCorpus,
    queries: &[String],
    reference: Option<&[Vec<DocId>]>,
    repair: bool,
    params: &ChaosParams,
) -> (ChaosRow, Vec<Vec<DocId>>) {
    let mut net = network(corpus, params);
    let chaos = reference.is_some();
    if chaos {
        net.set_fault_plane(params.plane());
    }
    net.build_index();
    net.set_repair_enabled(repair);
    if repair {
        // The construction phase finished; the publisher's bounded-backoff
        // re-publication schedule gets to run before the query stream starts
        // (in the no-repair arm the lost publications simply stay lost).
        let mut rounds = 0;
        while net.pending_publishes() > 0 && rounds < 64 {
            net.republish_round();
            rounds += 1;
        }
    }
    warm(&mut net, queries, params);
    let targets = if chaos {
        crash_targets(&net, params.crashes)
    } else {
        Vec::new()
    };
    for peer in &targets {
        net.fault_plane_mut().crash(*peer);
    }
    if chaos {
        rot_copies(&mut net, params.rotted_copies, &targets);
    }
    let origins: Vec<usize> = (0..params.peers).filter(|p| !targets.contains(p)).collect();

    let overlay_before = net
        .traffic_snapshot()
        .category(alvisp2p_netsim::TrafficCategory::Overlay)
        .bytes;
    let mut answers = Vec::with_capacity(queries.len());
    let mut robustness = Robustness::default();
    let mut bytes = 0u64;
    let mut recall_sum = 0.0f64;
    for (i, text) in queries.iter().enumerate() {
        if repair && i % params.repair_every == 0 {
            net.republish_round();
            net.repair_round();
        }
        let request = QueryRequest::new(text.clone())
            .from_peer(origins[i % origins.len()])
            .top_k(10);
        let response = net.execute(&request).expect("chaos query still succeeds");
        bytes += response.bytes;
        robustness.observe(&response);
        let got: Vec<DocId> = response.results.iter().map(|r| r.doc).collect();
        if let Some(reference) = reference {
            let want = &reference[i];
            recall_sum += if want.is_empty() {
                1.0
            } else {
                want.iter().filter(|d| got.contains(d)).count() as f64 / want.len() as f64
            };
        } else {
            recall_sum += 1.0;
        }
        answers.push(got);
    }
    if repair {
        // Final drain: the backoff schedule may still hold a handful of
        // publications whose next due round lies past the query stream.
        let mut rounds = 0;
        while net.pending_publishes() > 0 && rounds < 64 {
            net.republish_round();
            rounds += 1;
        }
        net.repair_round();
    }
    let overlay_after = net
        .traffic_snapshot()
        .category(alvisp2p_netsim::TrafficCategory::Overlay)
        .bytes;
    let n = queries.len() as f64;
    let row = ChaosRow {
        arm: arm.to_string(),
        recall_at_10: recall_sum / n,
        bytes_per_query: bytes as f64 / n,
        replica_consistency: net.replica_consistency(),
        pending_publishes: net.pending_publishes(),
        overlay_bytes: overlay_after - overlay_before,
        robustness,
    };
    (row, answers)
}

/// Runs the fault-free reference and the two chaos arms.
pub fn run(params: &ChaosParams) -> ChaosReport {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::zipf_query_log(&corpus, params.queries, params.zipf_s, params.seed);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    let (reference_row, reference_answers) =
        run_arm("fault-free", &corpus, &queries, None, false, params);
    let (repair_row, _) = run_arm(
        "repair",
        &corpus,
        &queries,
        Some(&reference_answers),
        true,
        params,
    );
    let (no_repair_row, _) = run_arm(
        "no-repair",
        &corpus,
        &queries,
        Some(&reference_answers),
        false,
        params,
    );

    let repair_byte_overhead = repair_row.bytes_per_query / reference_row.bytes_per_query.max(1e-9);
    ChaosReport {
        bench: "chaos".to_string(),
        quick: false,
        params: params.clone(),
        fault_free_bytes_per_query: reference_row.bytes_per_query,
        repair_recall: repair_row.recall_at_10,
        no_repair_recall: no_repair_row.recall_at_10,
        repair_consistency: repair_row.replica_consistency,
        no_repair_consistency: no_repair_row.replica_consistency,
        repair_pending: repair_row.pending_publishes,
        no_repair_pending: no_repair_row.pending_publishes,
        repair_byte_overhead,
        rows: vec![repair_row, no_repair_row],
    }
}

/// Prints the result table.
pub fn print(report: &ChaosReport) {
    let mut table = Table::new(
        "P5: recall@10, replica consistency and un-acked publications under combined \
         control-plane faults",
        &[
            "arm",
            "recall@10",
            "bytes/q",
            "x ref",
            "consist",
            "pending",
            "overlay B",
            "retries",
            "failed",
            "hedged",
            "corrupt",
            "compl",
        ],
    );
    for r in &report.rows {
        table.row(&[
            r.arm.clone(),
            fmt_f(r.recall_at_10, 3),
            fmt_f(r.bytes_per_query, 0),
            fmt_f(
                r.bytes_per_query / report.fault_free_bytes_per_query.max(1e-9),
                2,
            ),
            fmt_f(r.replica_consistency, 3),
            r.pending_publishes.to_string(),
            r.overlay_bytes.to_string(),
            r.robustness.retries.to_string(),
            r.robustness.failed_probes.to_string(),
            r.robustness.hedged.to_string(),
            r.robustness.corrupt_probes.to_string(),
            fmt_f(r.robustness.mean_completeness(), 3),
        ]);
    }
    table.print();
    println!(
        "headline ({}% probe loss, {}% publish loss, {}% corruption, {}% sync loss, {} crashes): \
         repair recall {:.3} / consistency {:.3} / {} pending vs no-repair recall {:.3} / \
         consistency {:.3} / {} pending, repair at {:.2}x fault-free bytes/query",
        report.params.probe_loss * 100.0,
        report.params.publish_loss * 100.0,
        report.params.corrupt_rate * 100.0,
        report.params.sync_loss * 100.0,
        report.params.crashes,
        report.repair_recall,
        report.repair_consistency,
        report.repair_pending,
        report.no_repair_recall,
        report.no_repair_consistency,
        report.no_repair_pending,
        report.repair_byte_overhead,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosParams {
        ChaosParams {
            peers: 12,
            docs: 150,
            queries: 100,
            rotted_copies: 2,
            ..ChaosParams::default()
        }
    }

    #[test]
    fn chaos_smoke_repair_converges_and_no_repair_stays_divergent() {
        let report = run(&tiny());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].arm, "repair");
        assert_eq!(report.rows[1].arm, "no-repair");
        assert_eq!(report.repair_pending, 0, "re-publication must drain");
        assert!(
            report.no_repair_pending > 0,
            "20% publish loss must leave un-acked publications without repair"
        );
        assert!(
            report.repair_consistency >= 0.999,
            "repair must restore replica consistency, got {:.3}",
            report.repair_consistency
        );
        assert!(
            report.no_repair_consistency < 1.0,
            "rotted copies must keep the no-repair arm divergent"
        );
        assert!(
            report.repair_recall > report.no_repair_recall,
            "repair ({:.3}) must beat no-repair ({:.3})",
            report.repair_recall,
            report.no_repair_recall
        );
        let corrupt_frames: u64 = report
            .rows
            .iter()
            .map(|r| r.robustness.corrupt_probes)
            .sum();
        assert!(
            corrupt_frames > 0,
            "a 1% bit-flip rate must surface corrupt frames"
        );
    }

    #[test]
    #[ignore = "full-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn repair_recovers_recall_and_consistency_at_full_scale() {
        let report = run(&ChaosParams::default());
        assert!(
            report.repair_recall >= 0.95,
            "repair recall {:.3} below the 0.95 acceptance bar",
            report.repair_recall
        );
        assert!(
            report.no_repair_recall <= report.repair_recall - 0.02,
            "no-repair ({:.3}) did not measurably degrade vs repair ({:.3})",
            report.no_repair_recall,
            report.repair_recall
        );
        assert!(report.repair_consistency >= 0.999);
        assert!(report.no_repair_consistency < 1.0);
        assert_eq!(report.repair_pending, 0);
        assert!(report.no_repair_pending > 0);
        assert!(
            report.repair_byte_overhead <= 2.0,
            "repair byte overhead {:.2}x exceeds the 2.0x bound",
            report.repair_byte_overhead
        );
    }
}
