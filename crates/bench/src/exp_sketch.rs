//! **P3 — Per-key provenance sketches: probe pruning and net bytes per query,
//! with and without cost-based sketch maintenance.**
//!
//! A sketch-publishing network spends overlay bytes up front (each maintained
//! key ships a compact digest of its posting list alongside the ranking
//! statistics) to avoid retrieval bytes later: a querier holding a fresh
//! sketch can *prove* that a probe's response would carry no entry above the
//! current score floor and answer it locally, spending nothing on the wire.
//! This experiment runs the identical seeded workload twice — once with
//! [`SketchPolicy::NoSketches`], once with the cost-based selector — and
//! measures what the sketch subsystem buys and what it costs:
//!
//! * **retrieval bytes per query** with and without pruning, and the **net
//!   bytes per query** once the sketch-upkeep overlay bytes are amortized
//!   over the measured query phase — the headline claim is a net reduction;
//! * **pruned probes** (absolute and as a fraction of all probes) — each one
//!   a round trip whose response the sketch synthesized exactly;
//! * **sketch upkeep**: keys considered vs maintained by the cost model, the
//!   overlay bytes spent, and whether every maintained sketch's upkeep stayed
//!   within its modeled savings (the selector's own invariant);
//! * **top-k equality**: every query's ranked answer must be identical across
//!   arms — pruning is result-invisible by construction, and this arm proves
//!   it at workload scale.
//!
//! Both arms follow the same protocol: build the index, run the first half of
//! the Zipf query log as a warm-up (accumulating per-key usage statistics),
//! republish the key evidence — at which point the cost model projects each
//! key's observed demand instead of its cold-start prior, so sketch upkeep
//! concentrates on the keys queries actually hit — and measure the second
//! half.
//!
//! Results go to `BENCH_sketch.json` (`ALVIS_BENCH_OUT` overrides the path).

use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::{QueryRequest, ThresholdMode};
use alvisp2p_core::sketch::SketchPolicy;
use alvisp2p_core::strategy::Hdk;
use alvisp2p_netsim::TrafficCategory;
use alvisp2p_textindex::{CorpusConfig, CorpusGenerator, DocId, SyntheticCorpus};
use serde::{Deserialize, Serialize};

use crate::table::{fmt_bytes, fmt_f, Robustness, Table};
use crate::workloads::DEFAULT_SEED;

/// Parameters of the sketch experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchParams {
    /// Peers in the overlay.
    pub peers: usize,
    /// Documents in the corpus.
    pub docs: usize,
    /// Query instances in the log (half warm-up, half measured).
    pub queries: usize,
    /// Result-list size requested per query.
    pub top_k: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams {
            peers: 32,
            docs: 1_000,
            queries: 600,
            top_k: 10,
            seed: DEFAULT_SEED,
        }
    }
}

impl SketchParams {
    /// Fast smoke-test configuration (`ALVIS_QUICK=1` / `--quick`).
    pub fn quick() -> Self {
        SketchParams {
            peers: 16,
            docs: 250,
            queries: 160,
            ..Default::default()
        }
    }
}

/// One measured arm of the sketch experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchArmRow {
    /// Sketch policy label (`no-sketches`, `cost-based`).
    pub arm: String,
    /// Mean retrieval bytes per measured query.
    pub retrieval_bytes_per_query: f64,
    /// Sketch-upkeep overlay bytes of the demand-aware publish pass (0 for
    /// `no-sketches`).
    pub upkeep_bytes: u64,
    /// Retrieval bytes plus amortized upkeep, per measured query — the net
    /// cost.
    pub net_bytes_per_query: f64,
    /// Probes answered from the sketch cache instead of the wire.
    pub pruned_probes: u64,
    /// Pruned probes as a fraction of all measured probes.
    pub pruned_fraction: f64,
    /// Keys the cost model considered for a sketch.
    pub considered_keys: usize,
    /// Keys the cost model actually maintained a sketch for.
    pub sketched_keys: usize,
    /// The cost model's total modeled probe-byte savings (its admission bar).
    pub modeled_savings: f64,
    /// Every maintained sketch's upkeep stayed within its modeled savings.
    pub upkeep_accounted: bool,
    /// Whether every measured query's answer equals the `no-sketches` arm's.
    pub identical_topk: bool,
    /// Aggregated robustness counters over the measured half (all zeros under
    /// `NoFaults`; defaulted when reading reports written before the field
    /// existed).
    #[serde(default)]
    pub robustness: Robustness,
}

/// The `BENCH_sketch.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchReport {
    /// Experiment identifier.
    pub bench: String,
    /// Whether the quick configuration ran.
    pub quick: bool,
    /// Parameters used.
    pub params: SketchParams,
    /// Measured arms.
    pub rows: Vec<SketchArmRow>,
    /// Fractional reduction in net bytes per query of the cost-based arm over
    /// the baseline (retrieval savings minus amortized upkeep) — the headline.
    pub net_reduction: f64,
}

/// A topically dense corpus (small vocabulary relative to the collection):
/// frequent terms with long posting lists are exactly where score floors
/// climb above whole keys and pruning has something to prove.
fn corpus(num_docs: usize, seed: u64) -> SyntheticCorpus {
    let config = CorpusConfig {
        num_docs,
        vocab_size: 500,
        num_topics: 6,
        topic_vocab: 60,
        doc_len_mean: 80,
        doc_len_spread: 30,
        ..Default::default()
    };
    CorpusGenerator::new(config, seed).generate()
}

fn network(corpus: &SyntheticCorpus, policy: SketchPolicy, params: &SketchParams) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(params.peers)
        .strategy(Hdk::default())
        .sketch_policy(policy)
        .seed(params.seed)
        .corpus(corpus)
        .build_indexed()
        .expect("experiment network configuration is valid")
}

/// A Zipf-popularity query log over pairs of one mid-frequency term and one
/// head (very frequent) term. This is the regime sketches are for: the
/// mid-frequency term's high-idf matches fill the top-k and set a high score
/// floor, while the head term's long, low-idf posting list — the expensive
/// probe, the paper's whole scalability problem — often scores *entirely*
/// below that floor, which is exactly what a score sketch can prove without
/// fetching the list. The rounds are interleaved so both halves of the log
/// draw the same distribution.
fn query_mix(corpus: &SyntheticCorpus, n: usize) -> Vec<String> {
    let vocab: Vec<&str> = corpus.vocabulary.iter().map(String::as_str).collect();
    let distinct: Vec<String> = (0..24)
        .map(|i| format!("{} {}", vocab[80 + 2 * i], vocab[i]))
        .collect();
    let weights: Vec<f64> = (0..distinct.len())
        .map(|r| 1.0 / ((r + 1) as f64).powf(1.1))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((n as f64) * w / total).round() as usize)
        .collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut emitted = false;
        for (i, c) in counts.iter_mut().enumerate() {
            if *c > 0 && out.len() < n {
                *c -= 1;
                out.push(distinct[i].clone());
                emitted = true;
            }
        }
        if !emitted {
            // Rounding starved the tail: top up with the hottest query.
            out.push(distinct[0].clone());
        }
    }
    out
}

/// Runs one arm: warm-up half, demand-aware republish, measured half.
/// Returns its row (top-k equality filled in by the caller) plus the
/// per-query answers for cross-arm comparison.
fn run_arm(
    arm: &str,
    policy: SketchPolicy,
    corpus: &SyntheticCorpus,
    warmup: &[String],
    measured: &[String],
    params: &SketchParams,
) -> (SketchArmRow, Vec<Vec<(DocId, u64)>>) {
    let mut net = network(corpus, policy, params);
    for (i, text) in warmup.iter().enumerate() {
        let request = QueryRequest::new(text.clone())
            .from_peer(i % params.peers)
            .top_k(params.top_k)
            .threshold_mode(ThresholdMode::Aggressive);
        net.execute(&request).expect("warm-up query succeeds");
    }
    // Republish the key evidence: the cost model now sees the warm-up's
    // per-key usage statistics and keeps sketches only where demand was.
    net.build_index();
    let report = net.sketch_report().clone();
    let stats_before = net.global_index().stats_snapshot();

    let mut answers = Vec::with_capacity(measured.len());
    let mut pruned = 0u64;
    let mut probes = 0u64;
    let mut robustness = Robustness::default();
    for (i, text) in measured.iter().enumerate() {
        let request = QueryRequest::new(text.clone())
            .from_peer(i % params.peers)
            .top_k(params.top_k)
            .threshold_mode(ThresholdMode::Aggressive);
        let response = net.execute(&request).expect("query succeeds");
        robustness.observe(&response);
        pruned += response.pruned_probes as u64;
        probes += response.trace.probes as u64;
        answers.push(
            response
                .results
                .iter()
                .map(|r| (r.doc, r.score.to_bits()))
                .collect(),
        );
    }

    let spent = net.global_index().stats_snapshot().since(&stats_before);
    let n = measured.len() as f64;
    let retrieval = spent.category(TrafficCategory::Retrieval).bytes as f64;
    let row = SketchArmRow {
        arm: arm.to_string(),
        retrieval_bytes_per_query: retrieval / n,
        upkeep_bytes: report.upkeep_bytes,
        net_bytes_per_query: (retrieval + report.upkeep_bytes as f64) / n,
        pruned_probes: pruned,
        pruned_fraction: if probes == 0 {
            0.0
        } else {
            pruned as f64 / probes as f64
        },
        considered_keys: report.considered_keys,
        sketched_keys: report.sketched_keys,
        modeled_savings: report.modeled_savings,
        upkeep_accounted: report.upkeep_accounted(),
        identical_topk: true, // filled in by the caller for the non-baseline arm
        robustness,
    };
    (row, answers)
}

/// Runs both arms on the identical seeded workload and compares their answers.
pub fn run(params: &SketchParams) -> SketchReport {
    let corpus = corpus(params.docs, params.seed);
    let queries = query_mix(&corpus, params.queries);
    let (warmup, measured) = queries.split_at(queries.len() / 2);

    let (baseline_row, baseline_answers) = run_arm(
        "no-sketches",
        SketchPolicy::NoSketches,
        &corpus,
        warmup,
        measured,
        params,
    );
    let (mut sketched_row, sketched_answers) = run_arm(
        "cost-based",
        SketchPolicy::cost_based(),
        &corpus,
        warmup,
        measured,
        params,
    );
    sketched_row.identical_topk = baseline_answers == sketched_answers;

    let net_reduction = 1.0
        - sketched_row.net_bytes_per_query
            / baseline_row.net_bytes_per_query.max(f64::MIN_POSITIVE);
    SketchReport {
        bench: "sketch".to_string(),
        quick: false,
        params: params.clone(),
        rows: vec![baseline_row, sketched_row],
        net_reduction,
    }
}

/// Prints the result table.
pub fn print(report: &SketchReport) {
    let mut table = Table::new(
        "P3: probe pruning and net bytes per query (with/without cost-based sketches)",
        &[
            "arm", "retr B/q", "upkeep B", "net B/q", "pruned", "pruned %", "keys", "topk=",
        ],
    );
    for r in &report.rows {
        table.row(&[
            r.arm.clone(),
            fmt_bytes(r.retrieval_bytes_per_query as u64),
            fmt_bytes(r.upkeep_bytes),
            fmt_bytes(r.net_bytes_per_query as u64),
            r.pruned_probes.to_string(),
            fmt_f(r.pruned_fraction * 100.0, 1),
            format!("{}/{}", r.sketched_keys, r.considered_keys),
            if r.identical_topk { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "net bytes/query reduction: {:.1}% (retrieval savings minus amortized sketch upkeep), \
         upkeep accounted: {}",
        report.net_reduction * 100.0,
        report.rows.iter().all(|r| r.upkeep_accounted),
    );
    let mut robustness = Robustness::default();
    for r in &report.rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_smoke_prunes_probes_and_preserves_answers() {
        let report = run(&SketchParams::quick());
        assert_eq!(report.rows.len(), 2);
        let baseline = &report.rows[0];
        let sketched = &report.rows[1];
        assert_eq!(baseline.pruned_probes, 0, "NoSketches must never prune");
        assert_eq!(baseline.upkeep_bytes, 0);
        assert!(sketched.pruned_probes > 0, "no probe was ever pruned");
        assert!(sketched.sketched_keys > 0, "the cost model kept no sketch");
        assert!(
            sketched.sketched_keys < sketched.considered_keys,
            "demand-aware selection kept a sketch for every key"
        );
        assert!(sketched.upkeep_accounted, "upkeep exceeded modeled savings");
        assert!(sketched.identical_topk, "sketch pruning changed an answer");
        assert!(
            report.net_reduction > 0.0,
            "sketches cost more than they saved: {:.2}% net",
            report.net_reduction * 100.0
        );
    }

    #[test]
    #[ignore = "full-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn sketches_cut_net_bytes_at_full_scale() {
        // The acceptance bar: a net reduction in total bytes per query (the
        // retrieval savings must outweigh the sketch-upkeep overlay bytes) at
        // byte-identical answers.
        let report = run(&SketchParams::default());
        let sketched = &report.rows[1];
        assert!(sketched.identical_topk);
        assert!(sketched.upkeep_accounted);
        assert!(sketched.pruned_probes > 0);
        assert!(
            report.net_reduction >= 0.01,
            "net reduction {:.2}% below the 1% acceptance bar",
            report.net_reduction * 100.0
        );
    }
}
