//! **E2 — Retrieval bandwidth: single-term baseline vs HDK vs QDI.**
//!
//! The paper's central scalability claim (§1): retrieval with a traditional
//! single-term index "generates unscalable network traffic" because complete posting
//! lists of frequent terms must be shipped to the querying peer, while the AlvisP2P
//! strategies keep the transferred volume bounded by indexing term combinations with
//! truncated posting lists.
//!
//! The experiment sweeps the collection size (and, in a second table, the network
//! size), runs the same multi-keyword query workload under all three strategies and
//! reports the retrieval bytes and messages per query. The expected *shape*: the
//! single-term baseline's bytes/query grow roughly linearly with the collection, while
//! HDK and QDI stay roughly flat.

use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::plan::{BestEffort, GreedyCost, Planner};
use alvisp2p_core::request::{QueryRequest, ThresholdMode};
use alvisp2p_core::stats::{mean, percentile, recall_at_k};
use alvisp2p_core::strategy::Hdk;
use alvisp2p_textindex::DocId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

use crate::table::{fmt_bytes, fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// One row of the E2 output.
#[derive(Clone, Debug, Serialize)]
pub struct BandwidthRow {
    /// Number of documents in the global collection.
    pub docs: usize,
    /// Number of peers.
    pub peers: usize,
    /// Strategy label.
    pub strategy: String,
    /// Mean retrieval bytes per query.
    pub mean_bytes: f64,
    /// 95th-percentile retrieval bytes per query.
    pub p95_bytes: f64,
    /// Mean retrieval messages per query.
    pub mean_messages: f64,
    /// Mean probes (keys requested) per query.
    pub mean_probes: f64,
    /// Aggregated robustness counters (all zeros under `NoFaults`).
    pub robustness: Robustness,
}

/// Parameters of the bandwidth experiment.
#[derive(Clone, Debug, Serialize)]
pub struct BandwidthParams {
    /// Collection sizes to sweep (documents).
    pub doc_sweep: Vec<usize>,
    /// Network sizes to sweep (peers) at the largest collection size.
    pub peer_sweep: Vec<usize>,
    /// Peers used during the collection-size sweep.
    pub peers: usize,
    /// Number of measured queries per configuration.
    pub queries: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for BandwidthParams {
    fn default() -> Self {
        BandwidthParams {
            doc_sweep: vec![500, 1_000, 2_000, 4_000, 8_000],
            peer_sweep: vec![16, 32, 64, 128],
            peers: 64,
            queries: 150,
            seed: DEFAULT_SEED,
        }
    }
}

impl BandwidthParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        BandwidthParams {
            doc_sweep: vec![200, 400],
            peer_sweep: vec![8, 16],
            peers: 16,
            queries: 30,
            seed: DEFAULT_SEED,
        }
    }
}

/// Measures one `(corpus, peers, strategy)` configuration.
pub fn measure(
    net: &mut AlvisNetwork,
    queries: &[String],
    label: &str,
    docs: usize,
    peers: usize,
) -> BandwidthRow {
    let mut bytes = Vec::with_capacity(queries.len());
    let mut messages = Vec::with_capacity(queries.len());
    let mut probes = Vec::with_capacity(queries.len());
    let mut robustness = Robustness::default();
    for (i, q) in queries.iter().enumerate() {
        let request = QueryRequest::new(q.clone()).from_peer(i % peers).top_k(20);
        let outcome = net.execute(&request).expect("query succeeds");
        bytes.push(outcome.bytes as f64);
        messages.push(outcome.messages as f64);
        probes.push(outcome.trace.probes as f64);
        robustness.observe(&outcome);
    }
    BandwidthRow {
        docs,
        peers,
        strategy: label.to_string(),
        mean_bytes: mean(&bytes),
        p95_bytes: percentile(&bytes, 95.0),
        mean_messages: mean(&messages),
        mean_probes: mean(&probes),
        robustness,
    }
}

fn run_config(docs: usize, peers: usize, queries: usize, seed: u64, rows: &mut Vec<BandwidthRow>) {
    let corpus = workloads::corpus(docs, seed);
    let log = workloads::query_log(&corpus, queries * 2, false, seed);
    let texts: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();
    let (warmup, measured) = texts.split_at(queries);

    for (label, strategy) in workloads::all_strategies() {
        let mut net = workloads::indexed_network(&corpus, strategy.clone(), peers, seed);
        // QDI adapts to the query stream: warm it up on the first half of the log so
        // the measured half reflects its steady state (HDK and the baseline are
        // unaffected by the warm-up apart from statistics accumulation).
        if strategy.is_adaptive() {
            for (i, q) in warmup.iter().enumerate() {
                let _ = net.execute(&QueryRequest::new(q.clone()).from_peer(i % peers).top_k(20));
            }
        }
        net.reset_traffic();
        rows.push(measure(&mut net, measured, label, docs, peers));
    }
}

/// Runs the full E2 sweep.
pub fn run(params: &BandwidthParams) -> Vec<BandwidthRow> {
    let mut rows = Vec::new();
    for &docs in &params.doc_sweep {
        run_config(docs, params.peers, params.queries, params.seed, &mut rows);
    }
    // Network-size sweep at the largest collection size.
    if let Some(&docs) = params.doc_sweep.last() {
        for &peers in &params.peer_sweep {
            if peers != params.peers {
                run_config(docs, peers, params.queries, params.seed, &mut rows);
            }
        }
    }
    rows
}

/// Prints the E2 tables (collection-size sweep, then network-size sweep).
pub fn print(params: &BandwidthParams, rows: &[BandwidthRow]) {
    let mut t = Table::new(
        format!(
            "E2a: retrieval traffic per query vs collection size ({} peers)",
            params.peers
        ),
        &[
            "docs",
            "strategy",
            "bytes/query",
            "p95 bytes",
            "msgs/query",
            "probes/query",
        ],
    );
    for r in rows.iter().filter(|r| r.peers == params.peers) {
        t.row(&[
            r.docs.to_string(),
            r.strategy.clone(),
            fmt_bytes(r.mean_bytes as u64),
            fmt_bytes(r.p95_bytes as u64),
            fmt_f(r.mean_messages, 1),
            fmt_f(r.mean_probes, 1),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "E2b: retrieval traffic per query vs network size (largest collection)",
        &["peers", "strategy", "bytes/query", "msgs/query"],
    );
    for r in rows.iter().filter(|r| r.peers != params.peers) {
        t2.row(&[
            r.peers.to_string(),
            r.strategy.clone(),
            fmt_bytes(r.mean_bytes as u64),
            fmt_f(r.mean_messages, 1),
        ]);
    }
    if !t2.is_empty() {
        t2.print();
    }
    let mut robustness = Robustness::default();
    for r in rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

// ---------------------------------------------------------------------------
// E2c — planned-vs-best-effort arm: recall and spend under byte budgets
// ---------------------------------------------------------------------------

/// One row of the E2c output: one planner/threshold arm at one byte budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlannedBandwidthRow {
    /// The per-query byte budget.
    pub budget: u64,
    /// Planner label.
    pub planner: String,
    /// Threshold-aware probing mode (`off`, `rank-safe`, `conservative`,
    /// `aggressive`).
    pub threshold: String,
    /// Mean retrieval bytes per query.
    pub mean_bytes: f64,
    /// Largest retrieval spend of any single query.
    pub max_bytes: u64,
    /// Queries whose spend exceeded the budget (always 0 for the Reserve policy).
    pub budget_violations: usize,
    /// Mean recall@10 of the distributed results against the centralized
    /// reference top-10.
    pub mean_recall: f64,
    /// Mean probes per query.
    pub mean_probes: f64,
    /// Whether every query's top-k — document ids, ranks AND score bits —
    /// matched the `greedy-cost`/`off` reference arm at the same budget. The
    /// rank-safe mode's contract is that this is always `true`.
    #[serde(default)]
    pub identical_topk: bool,
    /// Posting blocks the probe floors let responsible peers elide whole,
    /// summed over the arm's queries.
    #[serde(default)]
    pub skipped_blocks: u64,
    /// Posting bytes elided below the probe floors, summed over the arm's
    /// queries.
    #[serde(default)]
    pub elided_bytes: u64,
    /// Rank-safe probes that fell back to the Conservative floor because a
    /// published per-key maximum was stale (always 0 for the other arms).
    #[serde(default)]
    pub rank_safe_fallbacks: u64,
    /// Aggregated robustness counters (all zeros under `NoFaults`).
    pub robustness: Robustness,
}

/// The E2c report committed as `BENCH_bandwidth.json` and guarded by
/// `perf_guard`: the planned sweep over the default corpus and over the
/// long-posting-list corpus (capped vocabulary), where floor-based elision
/// has the most bytes to save.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BandwidthReport {
    /// Whether the report came from a `--quick` run.
    #[serde(default)]
    pub quick: bool,
    /// The E2c sweep over the default corpus.
    pub planned: Vec<PlannedBandwidthRow>,
    /// The same sweep over the capped-vocabulary corpus
    /// ([`PlannedParams::long_lists`]).
    pub long_lists: Vec<PlannedBandwidthRow>,
}

/// Parameters of the E2c planned-vs-best-effort sweep.
#[derive(Clone, Debug, Serialize)]
pub struct PlannedParams {
    /// Collection size (documents).
    pub docs: usize,
    /// Number of peers.
    pub peers: usize,
    /// Number of measured queries per configuration.
    pub queries: usize,
    /// Per-query byte budgets to sweep.
    pub budgets: Vec<u64>,
    /// Cap the corpus vocabulary at this many terms (`None` keeps the
    /// Heaps-like default). A capped vocabulary concentrates the collection
    /// on fewer, more frequent terms, so posting lists are longer — the
    /// regime where the threshold arms' floor-based elision has the most
    /// bytes to save.
    pub vocab_cap: Option<usize>,
    /// Use the head-term pair-query log ([`workloads::head_query_log`])
    /// instead of the generic log: every query's terms are frequent and
    /// co-occur within the HDK proximity window, so its pair key is activated
    /// and its posting lists are the long ones floors can actually elide.
    pub head_queries: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for PlannedParams {
    fn default() -> Self {
        PlannedParams {
            docs: 2_000,
            peers: 32,
            queries: 100,
            budgets: vec![2_000, 4_000, 8_000, 16_000],
            vocab_cap: None,
            head_queries: false,
            seed: DEFAULT_SEED,
        }
    }
}

impl PlannedParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        PlannedParams {
            docs: 300,
            peers: 8,
            queries: 25,
            budgets: vec![1_500, 4_000],
            vocab_cap: None,
            head_queries: false,
            seed: DEFAULT_SEED,
        }
    }

    /// The same sweep over a long-posting-list corpus: the vocabulary is
    /// capped well below the Heaps-like default, so every term is frequent.
    pub fn long_lists(mut self) -> Self {
        self.vocab_cap = Some(500);
        self.head_queries = true;
        self
    }
}

/// Runs the E2c sweep: the same HDK network and query workload under each byte
/// budget, once planned with [`BestEffort`] (PR 1 cutoff semantics) and once
/// with [`GreedyCost`] (budget-aware admission).
pub fn run_planned(params: &PlannedParams) -> Vec<PlannedBandwidthRow> {
    let corpus = match params.vocab_cap {
        Some(vocab) => workloads::dense_corpus(params.docs, vocab, params.seed),
        None => workloads::corpus(params.docs, params.seed),
    };
    let log = if params.head_queries {
        workloads::head_query_log(&corpus, params.queries, params.seed)
    } else {
        workloads::query_log(&corpus, params.queries, false, params.seed)
    };
    let texts: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    // HDK is non-adaptive (no post-query index changes) and every metric below
    // comes from per-response deltas, so one indexed network serves every
    // (budget, planner) combination — and doubles as the centralized reference.
    let mut net = workloads::indexed_network(
        &corpus,
        Arc::new(Hdk::new(workloads::default_hdk())),
        params.peers,
        params.seed,
    );
    net.reset_traffic();
    // The centralized reference ranking depends only on the query text, so
    // compute it once per query rather than per (budget, planner) combination.
    let references: Vec<HashSet<DocId>> = texts
        .iter()
        .map(|text| {
            net.reference_search(text, 10)
                .iter()
                .map(|r| r.doc)
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    for &budget in &params.budgets {
        // The two planners are compared threshold-off (the planning story),
        // then the cost-based planner carries the threshold-probe arms (the
        // wire-codec story): the rank-safe mode's bytes curve at provably
        // identical rankings, the conservative mode's heuristic curve, and
        // the aggressive mode's deeper elision. The greedy/off arm runs
        // first: it is the answer reference every other arm's `identical_topk`
        // is measured against.
        let arms: [(&str, &dyn Planner, ThresholdMode); 5] = [
            ("greedy-cost", &GreedyCost::default(), ThresholdMode::Off),
            ("best-effort", &BestEffort, ThresholdMode::Off),
            (
                "greedy-cost",
                &GreedyCost::default(),
                ThresholdMode::RankSafe,
            ),
            (
                "greedy-cost",
                &GreedyCost::default(),
                ThresholdMode::Conservative,
            ),
            (
                "greedy-cost",
                &GreedyCost::default(),
                ThresholdMode::Aggressive,
            ),
        ];
        let mut reference_answers: Option<Vec<Vec<(DocId, u64)>>> = None;
        for (label, planner, threshold) in arms {
            let mut bytes = Vec::with_capacity(texts.len());
            let mut probes = Vec::with_capacity(texts.len());
            let mut recalls = Vec::with_capacity(texts.len());
            let mut answers = Vec::with_capacity(texts.len());
            let mut max_bytes = 0u64;
            let mut violations = 0usize;
            let mut skipped_blocks = 0u64;
            let mut elided_bytes = 0u64;
            let mut rank_safe_fallbacks = 0u64;
            let mut robustness = Robustness::default();
            for (i, text) in texts.iter().enumerate() {
                let request = QueryRequest::new(text.clone())
                    .from_peer(i % params.peers)
                    .top_k(10)
                    .byte_budget(budget)
                    .threshold_mode(threshold);
                let plan = net.plan_with(planner, &request).expect("plan succeeds");
                let outcome = net.run(&plan, &request).expect("query succeeds");
                robustness.observe(&outcome);
                recalls.push(recall_at_k(&outcome.results, &references[i], 10));
                answers.push(
                    outcome
                        .results
                        .iter()
                        .map(|r| (r.doc, r.score.to_bits()))
                        .collect::<Vec<_>>(),
                );
                bytes.push(outcome.bytes as f64);
                probes.push(outcome.trace.probes as f64);
                skipped_blocks += outcome.trace.skipped_blocks as u64;
                elided_bytes += outcome.trace.elided_bytes;
                rank_safe_fallbacks += outcome.rank_safe_fallbacks as u64;
                max_bytes = max_bytes.max(outcome.bytes);
                if outcome.bytes > budget {
                    violations += 1;
                }
            }
            let identical_topk = match &reference_answers {
                Some(reference) => *reference == answers,
                None => {
                    reference_answers = Some(answers);
                    true
                }
            };
            rows.push(PlannedBandwidthRow {
                budget,
                planner: label.to_string(),
                threshold: match threshold {
                    ThresholdMode::Off => "off",
                    ThresholdMode::RankSafe => "rank-safe",
                    ThresholdMode::Conservative => "conservative",
                    ThresholdMode::Aggressive => "aggressive",
                }
                .to_string(),
                mean_bytes: mean(&bytes),
                max_bytes,
                budget_violations: violations,
                mean_recall: mean(&recalls),
                mean_probes: mean(&probes),
                identical_topk,
                skipped_blocks,
                elided_bytes,
                rank_safe_fallbacks,
                robustness,
            });
        }
    }
    rows
}

/// Prints the E2c table.
pub fn print_planned(rows: &[PlannedBandwidthRow]) {
    let mut t = Table::new(
        "E2c: planned (greedy-cost) vs best-effort cutoff under per-query byte budgets, \
         with threshold-probe arms",
        &[
            "budget",
            "planner",
            "threshold",
            "bytes/query",
            "max bytes",
            "over budget",
            "recall@10",
            "probes/query",
            "topk",
            "blocks skipped",
            "bytes elided",
            "fallbacks",
        ],
    );
    for r in rows {
        t.row(&[
            fmt_bytes(r.budget),
            r.planner.clone(),
            r.threshold.clone(),
            fmt_bytes(r.mean_bytes as u64),
            fmt_bytes(r.max_bytes),
            r.budget_violations.to_string(),
            fmt_f(r.mean_recall, 3),
            fmt_f(r.mean_probes, 1),
            if r.identical_topk {
                "identical"
            } else {
                "DIVERGED"
            }
            .to_string(),
            r.skipped_blocks.to_string(),
            fmt_bytes(r.elided_bytes),
            r.rank_safe_fallbacks.to_string(),
        ]);
    }
    t.print();
    let mut robustness = Robustness::default();
    for r in rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvisp2p_core::strategy::{Hdk, SingleTermFull, Strategy};
    use std::sync::Arc;

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn baseline_ships_more_bytes_than_hdk_and_grows_with_the_collection() {
        // The paper's premise is "queries containing several frequent terms": build the
        // measured queries from frequent vocabulary terms so the posting lists the
        // baseline must ship are the problematic (long) ones, and use a small
        // truncation bound so HDK's lists are visibly bounded even at test scale.
        let hdk_config = alvisp2p_core::hdk::HdkConfig {
            df_max: 20,
            truncation_k: 20,
            ..Default::default()
        };
        let measure_mean = |docs: usize, strategy: Arc<dyn Strategy>| {
            let corpus = workloads::corpus(docs, 3);
            let queries: Vec<String> = (5..20)
                .map(|i| format!("{} {}", corpus.vocabulary[i], corpus.vocabulary[i + 1]))
                .collect();
            let mut net = workloads::indexed_network(&corpus, strategy, 8, 3);
            net.reset_traffic();
            let row = measure(&mut net, &queries, "x", docs, 8);
            row.mean_bytes
        };
        let base_small = measure_mean(150, Arc::new(SingleTermFull));
        let base_large = measure_mean(450, Arc::new(SingleTermFull));
        let hdk_small = measure_mean(150, Arc::new(Hdk::new(hdk_config.clone())));
        let hdk_large = measure_mean(450, Arc::new(Hdk::new(hdk_config)));

        // The untruncated single-term baseline transfers more than HDK, and its
        // per-query traffic grows faster with the collection size.
        assert!(
            base_large > hdk_large,
            "at 450 docs: baseline {base_large:.0} vs hdk {hdk_large:.0}"
        );
        let base_growth = base_large / base_small;
        let hdk_growth = hdk_large / hdk_small;
        assert!(
            base_growth > hdk_growth,
            "baseline growth {base_growth:.2} vs hdk growth {hdk_growth:.2}"
        );
    }

    #[test]
    fn long_list_corpus_keeps_budget_guarantees_and_lengthens_lists() {
        let params = PlannedParams::quick();
        // Compare on the generic workload: the production long-lists arm
        // also switches to head-term pair queries, whose pair keys HDK
        // serves from shorter multi-term lists — that workload effect
        // would mask the corpus effect this test isolates.
        let mut long = params.clone().long_lists();
        long.head_queries = params.head_queries;
        let base_rows = run_planned(&params);
        let long_rows = run_planned(&long);
        assert_eq!(base_rows.len(), long_rows.len());
        // The Reserve guarantee is corpus-independent.
        for r in long_rows.iter().filter(|r| r.planner == "greedy-cost") {
            assert_eq!(r.budget_violations, 0);
            assert!(r.max_bytes <= r.budget);
        }
        // A capped vocabulary concentrates the same collection on fewer terms:
        // the unbudgeted wire cost of a probe grows, which shows up as the
        // best-effort arm spending at least as much per query at the largest
        // budget (where the cutoff rarely binds).
        let spend = |rows: &[PlannedBandwidthRow]| {
            let max_budget = rows.iter().map(|r| r.budget).max().unwrap();
            rows.iter()
                .find(|r| r.planner == "best-effort" && r.budget == max_budget)
                .unwrap()
                .mean_bytes
        };
        let base_spend = spend(&base_rows);
        let long_spend = spend(&long_rows);
        assert!(
            long_spend >= base_spend,
            "long-list corpus did not lengthen posting lists \
             ({long_spend:.0} < {base_spend:.0} bytes/query)"
        );
    }

    #[test]
    fn planned_arm_greedy_matches_or_beats_best_effort_recall_within_budget() {
        let rows = run_planned(&PlannedParams::quick());
        assert!(!rows.is_empty());
        for budget in PlannedParams::quick().budgets {
            let arm = |planner: &str, threshold: &str| {
                rows.iter()
                    .find(|r| {
                        r.budget == budget && r.planner == planner && r.threshold == threshold
                    })
                    .unwrap()
            };
            let best = arm("best-effort", "off");
            let greedy = arm("greedy-cost", "off");
            // The Reserve policy is a hard bound; the cutoff baseline may
            // overshoot (that is the pre-planner behaviour being compared).
            assert_eq!(
                greedy.budget_violations, 0,
                "greedy-cost exceeded the {budget}-byte budget"
            );
            assert!(greedy.max_bytes <= budget);
            // At the same budget, cost-based planning retrieves at least as
            // much of the reference top-10 as the fixed-order cutoff.
            assert!(
                greedy.mean_recall >= best.mean_recall,
                "budget {budget}: greedy recall {:.3} < best-effort recall {:.3}",
                greedy.mean_recall,
                best.mean_recall
            );
            // Threshold-probe arms: the Reserve guarantee is the invariant.
            // (Cross-arm byte orderings are NOT invariant under budgets:
            // elision leaves budget unspent, which can admit an extra probe
            // whose request/routing cost exceeds the savings — so per-arm
            // spend comparisons are reported by the table, not asserted.)
            let conservative = arm("greedy-cost", "conservative");
            let aggressive = arm("greedy-cost", "aggressive");
            for r in [conservative, aggressive] {
                assert_eq!(r.budget_violations, 0);
                assert!(r.max_bytes <= budget);
                assert!(r.mean_recall > 0.0);
            }
        }
    }
}
