//! **E8 — Posting-list truncation bounds the transferred volume.**
//!
//! §1 of the paper: "the transmitted posting lists never exceed a constant size", and
//! the retrieval quality loss caused by the truncation is marginal. The experiment
//! sweeps the truncation bound `k`, builds the HDK index at each setting and measures
//! (a) the maximum and mean posting-list payload observed on the wire during
//! retrieval and (b) the retrieval quality against the centralized reference — plus
//! the lattice-pruning ablation (pruning below truncated keys on/off), which trades a
//! few probes for a marginal quality change.

use alvisp2p_core::hdk::HdkConfig;
use alvisp2p_core::lattice::LatticeConfig;
use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::stats::{mean, QualityAccumulator};
use alvisp2p_core::strategy::Hdk;
use alvisp2p_dht::DhtConfig;
use alvisp2p_netsim::WireSize;
use serde::Serialize;

use crate::table::{fmt_bytes, fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// One row of the E8 output.
#[derive(Clone, Debug, Serialize)]
pub struct TruncationRow {
    /// Truncation bound (maximum references per posting list).
    pub truncation_k: usize,
    /// Whether the lattice is pruned below truncated keys.
    pub prune_below_truncated: bool,
    /// Maximum posting-list payload (bytes) observed in any retrieved list.
    pub max_list_bytes: usize,
    /// Mean retrieval bytes per query.
    pub mean_query_bytes: f64,
    /// Mean probes per query.
    pub mean_probes: f64,
    /// Mean precision@10 against the centralized reference.
    pub precision_at_10: f64,
    /// Mean overlap@10 with the reference ranking.
    pub overlap_at_10: f64,
    /// Aggregated robustness counters (all zeros under `NoFaults`).
    pub robustness: Robustness,
}

/// Parameters of the truncation experiment.
#[derive(Clone, Debug, Serialize)]
pub struct TruncationParams {
    /// Number of documents.
    pub docs: usize,
    /// Number of peers.
    pub peers: usize,
    /// Number of evaluated queries.
    pub queries: usize,
    /// Truncation bounds to sweep.
    pub k_sweep: Vec<usize>,
    /// Whether to include the lattice-pruning ablation (run at the middle k).
    pub pruning_ablation: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for TruncationParams {
    fn default() -> Self {
        TruncationParams {
            docs: 2_000,
            peers: 32,
            queries: 150,
            k_sweep: vec![10, 25, 50, 100, 200, 500],
            pruning_ablation: true,
            seed: DEFAULT_SEED,
        }
    }
}

impl TruncationParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        TruncationParams {
            docs: 250,
            peers: 8,
            queries: 30,
            k_sweep: vec![10, 50],
            pruning_ablation: true,
            seed: DEFAULT_SEED,
        }
    }
}

/// Measures one `(truncation k, pruning)` configuration.
pub fn measure(
    corpus: &alvisp2p_textindex::SyntheticCorpus,
    queries: &[String],
    truncation_k: usize,
    prune: bool,
    peers: usize,
    seed: u64,
) -> TruncationRow {
    let hdk = HdkConfig {
        truncation_k,
        df_max: truncation_k,
        ..workloads::default_hdk()
    };
    let mut net = AlvisNetwork::builder()
        .peers(peers)
        .dht(DhtConfig::default())
        .strategy(Hdk::new(hdk))
        .lattice(LatticeConfig {
            prune_below_truncated: prune,
            ..Default::default()
        })
        .seed(seed)
        .corpus(corpus)
        .build_indexed()
        .expect("experiment network configuration is valid");

    // The largest possible on-the-wire posting list is bounded by the capacity:
    // report the exact codec frame length of the largest stored list.
    let max_list_bytes = net
        .global_index()
        .entries()
        .filter(|e| e.activated)
        .map(|e| e.postings.wire_size())
        .max()
        .unwrap_or(0);

    let mut bytes = Vec::new();
    let mut probes = Vec::new();
    let mut acc = QualityAccumulator::new();
    let mut robustness = Robustness::default();
    for (i, q) in queries.iter().enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(i % peers))
            .expect("query succeeds");
        robustness.observe(&outcome);
        bytes.push(outcome.bytes as f64);
        probes.push(outcome.trace.probes as f64);
        let reference = net.reference_search(q, 10);
        acc.add(&outcome.results, &reference, 10);
    }
    let summary = acc.summary();
    TruncationRow {
        truncation_k,
        prune_below_truncated: prune,
        max_list_bytes,
        mean_query_bytes: mean(&bytes),
        mean_probes: mean(&probes),
        precision_at_10: summary.mean_precision,
        overlap_at_10: summary.mean_overlap,
        robustness,
    }
}

/// Runs the full E8 sweep.
pub fn run(params: &TruncationParams) -> Vec<TruncationRow> {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::query_log(&corpus, params.queries, false, params.seed);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    let mut rows = Vec::new();
    for &k in &params.k_sweep {
        rows.push(measure(
            &corpus,
            &queries,
            k,
            true,
            params.peers,
            params.seed,
        ));
    }
    if params.pruning_ablation {
        let mid_k = params.k_sweep[params.k_sweep.len() / 2];
        rows.push(measure(
            &corpus,
            &queries,
            mid_k,
            false,
            params.peers,
            params.seed,
        ));
    }
    rows
}

/// Prints the E8 table.
pub fn print(rows: &[TruncationRow]) {
    let mut t = Table::new(
        "E8: effect of the posting-list truncation bound (HDK)",
        &[
            "k",
            "lattice pruning",
            "max list bytes",
            "bytes/query",
            "probes/query",
            "P@10",
            "overlap@10",
        ],
    );
    for r in rows {
        t.row(&[
            r.truncation_k.to_string(),
            if r.prune_below_truncated { "on" } else { "off" }.to_string(),
            fmt_bytes(r.max_list_bytes as u64),
            fmt_bytes(r.mean_query_bytes as u64),
            fmt_f(r.mean_probes, 1),
            fmt_f(r.precision_at_10, 3),
            fmt_f(r.overlap_at_10, 3),
        ]);
    }
    t.print();
    let mut robustness = Robustness::default();
    for r in rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn transferred_lists_are_bounded_by_k_and_quality_improves_with_k() {
        let params = TruncationParams {
            docs: 200,
            peers: 8,
            queries: 20,
            k_sweep: vec![5, 50],
            pruning_ablation: false,
            seed: 4,
        };
        let rows = run(&params);
        let small = rows.iter().find(|r| r.truncation_k == 5).unwrap();
        let large = rows.iter().find(|r| r.truncation_k == 50).unwrap();
        // The on-the-wire list size is bounded by the truncation bound (via
        // the codec's worst case for a frame of that many entries).
        assert!(small.max_list_bytes <= alvisp2p_core::codec::max_encoded_list_len(5));
        assert!(large.max_list_bytes <= alvisp2p_core::codec::max_encoded_list_len(50));
        // Larger truncation bound → at least as good quality and more bytes.
        assert!(large.overlap_at_10 >= small.overlap_at_10);
        assert!(large.mean_query_bytes >= small.mean_query_bytes);
    }

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn disabling_lattice_pruning_probes_more() {
        let corpus = workloads::corpus(200, 8);
        let log = workloads::query_log(&corpus, 20, false, 8);
        let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();
        let pruned = measure(&corpus, &queries, 10, true, 8, 8);
        let unpruned = measure(&corpus, &queries, 10, false, 8, 8);
        assert!(
            unpruned.mean_probes >= pruned.mean_probes,
            "unpruned {} vs pruned {}",
            unpruned.mean_probes,
            pruned.mean_probes
        );
    }
}
