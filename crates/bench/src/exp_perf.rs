//! **P1 — Key/posting hot-path microbenchmarks: the repo's perf trajectory.**
//!
//! The interning PR rebuilt [`alvisp2p_core::key::TermKey`] on the process-wide
//! term interner: term ids inline, ring hash cached at construction, publish and
//! probe free of key/list copies. This experiment quantifies exactly that work
//! and writes the numbers to `BENCH_perf.json`, so every future placement or
//! planner optimisation has a measured baseline to beat.
//!
//! Arms:
//!
//! * `legacy` — a faithful in-bench replica of the seed's `Vec<String>` key
//!   (construction, join-and-hash `ring_id`, per-term `wire_size`, deep clones).
//!   It exercises the *exact* per-operation work the seed implementation
//!   performed on the same inputs.
//! * `interned` — the live [`TermKey`] / [`GlobalIndex`] code paths.
//!
//! `publish_keyops` isolates the per-publish key-side work the seed performed
//! (`ring_id` join+hash, string `wire_size`, key clone, delta posting-list
//! clone) against what the interned path performs today (cached-hash copy,
//! arithmetic `wire_size`, inline key clone, borrowed delta). `publish_e2e`
//! measures the full [`GlobalIndex::publish_postings`] call — its `legacy-model`
//! arm is the same call **plus** the removed key-side work, i.e. what publishing
//! would cost today had the copies stayed.

use alvisp2p_core::global_index::GlobalIndex;
use alvisp2p_core::key::TermKey;
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::Hdk;
use alvisp2p_dht::DhtConfig;
use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::{build_vocabulary, DocId, TermId};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::table::{fmt_f, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// A faithful replica of the seed revision's string-based key, used as the
/// before-arm of the microbenchmarks. The logic mirrors the pre-interning
/// `core::key` byte for byte where it matters: construction sorts and
/// deduplicates owned `String`s, `ring_id` joins the terms and hashes the
/// joined string, `wire_size` walks the strings, and `clone` deep-copies.
pub mod legacy {
    use alvisp2p_dht::RingId;

    /// The seed's `TermKey`: a sorted, deduplicated `Vec<String>`.
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub struct LegacyTermKey {
        terms: Vec<String>,
    }

    impl LegacyTermKey {
        /// Seed `TermKey::new`.
        pub fn new(terms: impl IntoIterator<Item = impl Into<String>>) -> Self {
            let mut terms: Vec<String> = terms.into_iter().map(Into::into).collect();
            terms.sort_unstable();
            terms.dedup();
            assert!(!terms.is_empty(), "a LegacyTermKey needs at least one term");
            LegacyTermKey { terms }
        }

        /// Seed `TermKey::canonical`: joins the terms into a fresh `String`.
        pub fn canonical(&self) -> String {
            self.terms.join("+")
        }

        /// Seed `TermKey::ring_id`: re-joins and re-hashes on every call.
        pub fn ring_id(&self) -> RingId {
            RingId::hash_str(&self.canonical())
        }

        /// Seed `TermKey::wire_size`.
        pub fn wire_size(&self) -> usize {
            4 + self.terms.iter().map(|t| 4 + t.len()).sum::<usize>()
        }

        /// Number of terms.
        pub fn len(&self) -> usize {
            self.terms.len()
        }

        /// Whether the key is empty (never, by construction).
        pub fn is_empty(&self) -> bool {
            self.terms.is_empty()
        }

        /// Seed `TermKey::subsets_of_size`.
        pub fn subsets_of_size(&self, size: usize) -> Vec<LegacyTermKey> {
            if size == 0 || size > self.terms.len() {
                return Vec::new();
            }
            let mut out = Vec::new();
            let n = self.terms.len();
            for mask in 1u32..(1u32 << n) {
                if mask.count_ones() as usize != size {
                    continue;
                }
                let terms: Vec<String> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| self.terms[i].clone())
                    .collect();
                out.push(LegacyTermKey { terms });
            }
            out.sort();
            out
        }

        /// Seed `TermKey::all_subsets_desc`.
        pub fn all_subsets_desc(&self) -> Vec<LegacyTermKey> {
            let mut out = Vec::new();
            for size in (1..=self.terms.len()).rev() {
                out.extend(self.subsets_of_size(size));
            }
            out
        }
    }
}

/// One measured benchmark arm.
#[derive(Clone, Debug, Serialize)]
pub struct PerfRow {
    /// Benchmark name (`key_construct`, `publish_keyops`, …).
    pub bench: String,
    /// Arm (`legacy`, `interned`, `legacy-model`).
    pub arm: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Speedup of the `interned` arm over this benchmark's `legacy` arm
    /// (present on the interned arm only; 1.0 for single-arm benchmarks).
    pub speedup_vs_legacy: Option<f64>,
}

/// Parameters of the perf experiment.
#[derive(Clone, Debug, Serialize)]
pub struct PerfParams {
    /// Vocabulary size for key-operation inputs.
    pub vocab: usize,
    /// Distinct key shapes per benchmark input pool.
    pub pool: usize,
    /// Posting-list delta size used by the publish benchmarks.
    pub delta_refs: u32,
    /// Peers in the publish/query networks.
    pub peers: usize,
    /// Documents in the planned-query network.
    pub docs: usize,
    /// Minimum measurement time per arm.
    pub measure_ms: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            vocab: 4_000,
            pool: 512,
            delta_refs: 64,
            peers: 64,
            docs: 1_200,
            measure_ms: 600,
            seed: DEFAULT_SEED,
        }
    }
}

impl PerfParams {
    /// Fast smoke-test configuration (`ALVIS_QUICK=1` / `--quick`).
    pub fn quick() -> Self {
        PerfParams {
            vocab: 600,
            pool: 64,
            delta_refs: 16,
            peers: 16,
            docs: 200,
            measure_ms: 30,
            ..Default::default()
        }
    }
}

/// Times `f` repeatedly until `budget` elapses (after one warm-up call) and
/// returns `(iters, mean ns/op)`.
fn measure<O>(budget: Duration, mut f: impl FnMut() -> O) -> (u64, f64) {
    black_box(f());
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(f());
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    (iters, start.elapsed().as_nanos() as f64 / iters as f64)
}

fn push_pair(rows: &mut Vec<PerfRow>, bench: &str, legacy: (u64, f64), interned: (u64, f64)) {
    rows.push(PerfRow {
        bench: bench.to_string(),
        arm: "legacy".to_string(),
        iters: legacy.0,
        ns_per_op: legacy.1,
        ops_per_sec: 1e9 / legacy.1,
        speedup_vs_legacy: None,
    });
    rows.push(PerfRow {
        bench: bench.to_string(),
        arm: "interned".to_string(),
        iters: interned.0,
        ns_per_op: interned.1,
        ops_per_sec: 1e9 / interned.1,
        speedup_vs_legacy: Some(legacy.1 / interned.1),
    });
}

/// Runs every microbenchmark and returns the measured rows.
pub fn run(params: &PerfParams) -> Vec<PerfRow> {
    let budget = Duration::from_millis(params.measure_ms);
    let mut rows = Vec::new();

    // Input pool: realistic analyzed-vocabulary words, 2–3 terms per key.
    let vocab = build_vocabulary(params.vocab);
    let tuples: Vec<Vec<&str>> = (0..params.pool)
        .map(|i| {
            let a = (i * 7 + 13) % vocab.len();
            let b = (i * 31 + 101) % vocab.len();
            let c = (i * 57 + 229) % vocab.len();
            let mut t = vec![vocab[a].as_str(), vocab[b].as_str()];
            if i % 2 == 0 {
                t.push(vocab[c].as_str());
            }
            t
        })
        .collect();
    // Warm the interner so the interned arm measures the steady state (the
    // indexing phase interns the whole vocabulary long before queries arrive).
    for t in &tuples {
        let _ = TermKey::new(t.iter().copied());
    }

    // --- key_construct: analyzed terms → probe-ready key + ring id ---------
    // Each arm starts from what the analyzer hands its query pipeline: the
    // seed's analyzer emitted `String`s, the interned analyzer emits `TermId`s
    // (`Analyzer::analyze_query_ids`), so each arm constructs from its native
    // representation.
    let string_tuples: Vec<Vec<String>> = tuples
        .iter()
        .map(|t| t.iter().map(|s| (*s).to_string()).collect())
        .collect();
    let id_tuples: Vec<Vec<TermId>> = tuples
        .iter()
        .map(|t| t.iter().map(|s| TermId::intern(s)).collect())
        .collect();
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for t in &string_tuples {
            let key = legacy::LegacyTermKey::new(t.iter().map(String::as_str));
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for t in &id_tuples {
            let key = TermKey::from_term_ids(t.iter().copied());
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    push_pair(
        &mut rows,
        "key_construct",
        (legacy.0, legacy.1 / tuples.len() as f64),
        (interned.0, interned.1 / tuples.len() as f64),
    );

    // --- key_construct_from_str: same &str input for both arms -------------
    // Informational: includes the warm intern-map lookup the id path amortises
    // into analysis.
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for t in &tuples {
            let key = legacy::LegacyTermKey::new(t.iter().copied());
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for t in &tuples {
            let key = TermKey::new(t.iter().copied());
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    push_pair(
        &mut rows,
        "key_construct_from_str",
        (legacy.0, legacy.1 / tuples.len() as f64),
        (interned.0, interned.1 / tuples.len() as f64),
    );

    // --- ring_id: hash an existing key onto the ring -----------------------
    let legacy_keys: Vec<legacy::LegacyTermKey> = tuples
        .iter()
        .map(|t| legacy::LegacyTermKey::new(t.iter().copied()))
        .collect();
    let interned_keys: Vec<TermKey> = tuples
        .iter()
        .map(|t| TermKey::new(t.iter().copied()))
        .collect();
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for k in &legacy_keys {
            acc = acc.wrapping_add(k.ring_id().0);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for k in &interned_keys {
            acc = acc.wrapping_add(k.ring_id().0);
        }
        acc
    });
    push_pair(
        &mut rows,
        "ring_id",
        (legacy.0, legacy.1 / legacy_keys.len() as f64),
        (interned.0, interned.1 / interned_keys.len() as f64),
    );

    // --- lattice_enum: enumerate the subset lattice of 3-term keys ---------
    let legacy = measure(budget, || {
        let mut acc = 0usize;
        for k in &legacy_keys {
            acc += k.all_subsets_desc().len();
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0usize;
        for k in &interned_keys {
            acc += k.all_subsets_desc().len();
        }
        acc
    });
    push_pair(
        &mut rows,
        "lattice_enum",
        (legacy.0, legacy.1 / legacy_keys.len() as f64),
        (interned.0, interned.1 / interned_keys.len() as f64),
    );

    // --- publish_keyops: the per-publish key-side work ---------------------
    // Seed per publish: ring_id (join + hash), wire_size (string walk), a deep
    // key clone and a delta posting-list clone crossed into the DHT closure.
    // Interned per publish: cached-hash copy, arithmetic wire_size, an inline
    // key copy; the delta is borrowed (modelled here as no copy).
    let delta = TruncatedPostingList::from_refs(
        (0..params.delta_refs).map(|i| ScoredRef {
            doc: DocId::new(0, i),
            score: f64::from(params.delta_refs - i),
        }),
        params.delta_refs as usize,
    );
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for k in &legacy_keys {
            acc = acc.wrapping_add(k.ring_id().0);
            acc = acc.wrapping_add(k.wire_size() as u64);
            let key_copy = k.clone();
            let delta_copy = delta.clone();
            acc = acc.wrapping_add(key_copy.len() as u64 + delta_copy.len() as u64);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for k in &interned_keys {
            acc = acc.wrapping_add(k.ring_id().0);
            acc = acc.wrapping_add(k.wire_size() as u64);
            let key_copy = k.clone();
            let delta_ref = &delta;
            acc = acc.wrapping_add(key_copy.len() as u64 + delta_ref.len() as u64);
        }
        acc
    });
    push_pair(
        &mut rows,
        "publish_keyops",
        (legacy.0, legacy.1 / legacy_keys.len() as f64),
        (interned.0, interned.1 / interned_keys.len() as f64),
    );

    // --- publish_e2e: the full routed publish call -------------------------
    // `interned` is the live call; `legacy-model` adds back the key-side work
    // the seed performed per call (measured on the same overlay state).
    let mut gi = GlobalIndex::new(DhtConfig::default(), params.seed, params.peers);
    let interned = {
        let mut i = 0usize;
        measure(budget, || {
            let k = &interned_keys[i % interned_keys.len()];
            i += 1;
            gi.publish_postings(i % params.peers, k, &delta, params.delta_refs as usize * 4)
                .expect("publish succeeds")
        })
    };
    let mut gi = GlobalIndex::new(DhtConfig::default(), params.seed, params.peers);
    let legacy_model = {
        let mut i = 0usize;
        measure(budget, || {
            let k = &interned_keys[i % interned_keys.len()];
            let lk = &legacy_keys[i % legacy_keys.len()];
            i += 1;
            // The removed seed work: join+hash, string wire walk, deep copies.
            black_box(lk.ring_id());
            black_box(lk.wire_size());
            black_box(lk.clone());
            black_box(delta.clone());
            gi.publish_postings(i % params.peers, k, &delta, params.delta_refs as usize * 4)
                .expect("publish succeeds")
        })
    };
    rows.push(PerfRow {
        bench: "publish_e2e".to_string(),
        arm: "legacy-model".to_string(),
        iters: legacy_model.0,
        ns_per_op: legacy_model.1,
        ops_per_sec: 1e9 / legacy_model.1,
        speedup_vs_legacy: None,
    });
    rows.push(PerfRow {
        bench: "publish_e2e".to_string(),
        arm: "interned".to_string(),
        iters: interned.0,
        ns_per_op: interned.1,
        ops_per_sec: 1e9 / interned.1,
        speedup_vs_legacy: Some(legacy_model.1 / interned.1),
    });

    // --- planned_query: end-to-end plan + execute latency ------------------
    // Single-arm trajectory metric: the number future planner PRs must beat.
    let corpus = workloads::corpus(params.docs, params.seed);
    let mut net = workloads::indexed_network(
        &corpus,
        Arc::new(Hdk::new(workloads::default_hdk())),
        params.peers,
        params.seed,
    );
    let log = workloads::query_log(&corpus, 64, false, params.seed);
    let (iters, ns) = {
        let mut i = 0usize;
        measure(budget, || {
            let q = &log.queries[i % log.queries.len()];
            i += 1;
            let request = QueryRequest::new(&q.text).from_peer(i % params.peers);
            net.execute(&request).expect("query succeeds").results.len()
        })
    };
    rows.push(PerfRow {
        bench: "planned_query".to_string(),
        arm: "interned".to_string(),
        iters,
        ns_per_op: ns,
        ops_per_sec: 1e9 / ns,
        speedup_vs_legacy: None,
    });

    rows
}

/// Prints the result table.
pub fn print(rows: &[PerfRow]) {
    let mut table = Table::new(
        "P1: key/posting hot paths (legacy string keys vs interned keys)",
        &["bench", "arm", "ns/op", "ops/s", "speedup"],
    );
    for r in rows {
        table.row(&[
            r.bench.clone(),
            r.arm.clone(),
            fmt_f(r.ns_per_op, 1),
            fmt_f(r.ops_per_sec, 0),
            r.speedup_vs_legacy
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.print();
}

/// The `BENCH_perf.json` document: parameters plus measured rows.
#[derive(Clone, Debug, Serialize)]
pub struct PerfReport {
    /// Experiment identifier.
    pub bench: String,
    /// Whether the quick configuration ran.
    pub quick: bool,
    /// Parameters used.
    pub params: PerfParams,
    /// Measured rows.
    pub rows: Vec<PerfRow>,
}

/// Serialises a report for `BENCH_perf.json`.
pub fn report(params: &PerfParams, quick: bool, rows: Vec<PerfRow>) -> PerfReport {
    PerfReport {
        bench: "perf".to_string(),
        quick,
        params: params.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_replica_matches_interned_semantics() {
        let terms = ["peer", "retriev", "overlai"];
        let legacy = legacy::LegacyTermKey::new(terms);
        let interned = TermKey::new(terms);
        assert_eq!(legacy.canonical(), interned.canonical());
        assert_eq!(legacy.ring_id(), interned.ring_id());
        assert_eq!(legacy.wire_size(), interned.wire_size());
        assert_eq!(legacy.len(), interned.len());
        assert!(!legacy.is_empty());
        let l: Vec<String> = legacy
            .all_subsets_desc()
            .iter()
            .map(|k| k.canonical())
            .collect();
        let i: Vec<String> = interned
            .all_subsets_desc()
            .iter()
            .map(|k| k.canonical())
            .collect();
        assert_eq!(l, i);
    }

    #[test]
    fn perf_smoke_produces_all_benchmarks_with_speedups() {
        let params = PerfParams {
            measure_ms: 2,
            pool: 16,
            vocab: 120,
            peers: 8,
            docs: 60,
            ..PerfParams::quick()
        };
        let rows = run(&params);
        let benches: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.bench.as_str()).collect();
        for expected in [
            "key_construct",
            "key_construct_from_str",
            "ring_id",
            "lattice_enum",
            "publish_keyops",
            "publish_e2e",
            "planned_query",
        ] {
            assert!(benches.contains(expected), "missing bench {expected}");
        }
        for r in &rows {
            assert!(r.ns_per_op > 0.0, "{r:?}");
            assert!(r.iters > 0, "{r:?}");
        }
        // Every paired benchmark reports a speedup on its interned arm.
        for bench in ["key_construct", "ring_id", "lattice_enum", "publish_keyops"] {
            let s = rows
                .iter()
                .find(|r| r.bench == bench && r.arm == "interned")
                .and_then(|r| r.speedup_vs_legacy)
                .unwrap_or(0.0);
            assert!(s > 0.0, "{bench} has no speedup recorded");
        }
    }
}
