//! **P1 — Key/posting hot-path microbenchmarks: the repo's perf trajectory.**
//!
//! The interning PR rebuilt [`alvisp2p_core::key::TermKey`] on the process-wide
//! term interner: term ids inline, ring hash cached at construction, publish and
//! probe free of key/list copies. This experiment quantifies exactly that work
//! and writes the numbers to `BENCH_perf.json`, so every future placement or
//! planner optimisation has a measured baseline to beat.
//!
//! Arms:
//!
//! * `legacy` — a faithful in-bench replica of the seed's `Vec<String>` key
//!   (construction, join-and-hash `ring_id`, per-term `wire_size`, deep clones).
//!   It exercises the *exact* per-operation work the seed implementation
//!   performed on the same inputs.
//! * `interned` — the live [`TermKey`] / [`GlobalIndex`] code paths.
//!
//! `publish_keyops` isolates the per-publish key-side work the seed performed
//! (`ring_id` join+hash, string `wire_size`, key clone, delta posting-list
//! clone) against what the interned path performs today (cached-hash copy,
//! arithmetic `wire_size`, inline key clone, borrowed delta). `publish_e2e`
//! measures the full [`GlobalIndex::publish_postings`] call — its `legacy-model`
//! arm is the same call **plus** the removed key-side work, i.e. what publishing
//! would cost today had the copies stayed.

use alvisp2p_core::codec;
use alvisp2p_core::global_index::GlobalIndex;
use alvisp2p_core::key::TermKey;
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_core::request::{QueryRequest, ThresholdMode};
use alvisp2p_core::strategy::Hdk;
use alvisp2p_dht::DhtConfig;
use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::{build_vocabulary, DocId, TermId};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::table::{fmt_f, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// A faithful replica of the seed revision's string-based key, used as the
/// before-arm of the microbenchmarks. The logic mirrors the pre-interning
/// `core::key` byte for byte where it matters: construction sorts and
/// deduplicates owned `String`s, `ring_id` joins the terms and hashes the
/// joined string, `wire_size` walks the strings, and `clone` deep-copies.
pub mod legacy {
    use alvisp2p_dht::RingId;

    /// The seed's `TermKey`: a sorted, deduplicated `Vec<String>`.
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub struct LegacyTermKey {
        terms: Vec<String>,
    }

    impl LegacyTermKey {
        /// Seed `TermKey::new`.
        pub fn new(terms: impl IntoIterator<Item = impl Into<String>>) -> Self {
            let mut terms: Vec<String> = terms.into_iter().map(Into::into).collect();
            terms.sort_unstable();
            terms.dedup();
            assert!(!terms.is_empty(), "a LegacyTermKey needs at least one term");
            LegacyTermKey { terms }
        }

        /// Seed `TermKey::canonical`: joins the terms into a fresh `String`.
        pub fn canonical(&self) -> String {
            self.terms.join("+")
        }

        /// Seed `TermKey::ring_id`: re-joins and re-hashes on every call.
        pub fn ring_id(&self) -> RingId {
            RingId::hash_str(&self.canonical())
        }

        /// Seed `TermKey::wire_size`.
        pub fn wire_size(&self) -> usize {
            4 + self.terms.iter().map(|t| 4 + t.len()).sum::<usize>()
        }

        /// Number of terms.
        pub fn len(&self) -> usize {
            self.terms.len()
        }

        /// Whether the key is empty (never, by construction).
        pub fn is_empty(&self) -> bool {
            self.terms.is_empty()
        }

        /// Seed `TermKey::subsets_of_size`.
        pub fn subsets_of_size(&self, size: usize) -> Vec<LegacyTermKey> {
            if size == 0 || size > self.terms.len() {
                return Vec::new();
            }
            let mut out = Vec::new();
            let n = self.terms.len();
            for mask in 1u32..(1u32 << n) {
                if mask.count_ones() as usize != size {
                    continue;
                }
                let terms: Vec<String> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| self.terms[i].clone())
                    .collect();
                out.push(LegacyTermKey { terms });
            }
            out.sort();
            out
        }

        /// Seed `TermKey::all_subsets_desc`.
        pub fn all_subsets_desc(&self) -> Vec<LegacyTermKey> {
            let mut out = Vec::new();
            for size in (1..=self.terms.len()).rev() {
                out.extend(self.subsets_of_size(size));
            }
            out
        }
    }
}

/// One measured benchmark arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfRow {
    /// Benchmark name (`key_construct`, `publish_keyops`, …).
    pub bench: String,
    /// Arm (`legacy`, `interned`, `legacy-model`).
    pub arm: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Speedup of the `interned` arm over this benchmark's `legacy` arm
    /// (present on the interned arm only; 1.0 for single-arm benchmarks).
    pub speedup_vs_legacy: Option<f64>,
}

/// One measured posting-list bytes-per-query arm (the wire comparison the
/// codec PR is about: what the same query workload charges under the PR 3
/// fixed-width accounting vs the codec, with and without threshold-aware
/// probes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireRow {
    /// Accounting/probing arm (`pr3-f64`, `codec`, `codec+threshold`,
    /// `codec+aggressive`).
    pub arm: String,
    /// Mean posting-list response bytes per query.
    pub posting_bytes_per_query: f64,
    /// Mean total retrieval bytes per query (requests + routing + responses).
    pub total_bytes_per_query: f64,
    /// Posting-bytes reduction factor vs the `pr3-f64` arm (absent on the
    /// baseline arm itself).
    pub reduction_vs_pr3: Option<f64>,
}

/// Parameters of the perf experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfParams {
    /// Vocabulary size for key-operation inputs.
    pub vocab: usize,
    /// Distinct key shapes per benchmark input pool.
    pub pool: usize,
    /// Posting-list delta size used by the publish benchmarks.
    pub delta_refs: u32,
    /// Peers in the publish/query networks.
    pub peers: usize,
    /// Documents in the planned-query network.
    pub docs: usize,
    /// Minimum measurement time per arm.
    pub measure_ms: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            vocab: 4_000,
            pool: 512,
            delta_refs: 64,
            peers: 64,
            docs: 1_200,
            measure_ms: 600,
            seed: DEFAULT_SEED,
        }
    }
}

impl PerfParams {
    /// Fast smoke-test configuration (`ALVIS_QUICK=1` / `--quick`).
    ///
    /// Only the *network* knobs (peers/docs) and the measurement budget
    /// shrink; the microbenchmark input shapes (vocabulary, key pool, delta
    /// size) stay at their full-run values so every scale-independent arm
    /// performs identical per-op work in quick and full runs — which is what
    /// lets CI's `perf_guard` compare a fresh `--quick` run against the
    /// committed full-run `BENCH_perf.json`.
    pub fn quick() -> Self {
        PerfParams {
            peers: 16,
            docs: 200,
            measure_ms: 60,
            ..Default::default()
        }
    }
}

/// Times `f` repeatedly until `budget` elapses (after one warm-up call) and
/// returns `(iters, mean ns/op)`.
fn measure<O>(budget: Duration, mut f: impl FnMut() -> O) -> (u64, f64) {
    black_box(f());
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(f());
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    (iters, start.elapsed().as_nanos() as f64 / iters as f64)
}

fn push_pair(rows: &mut Vec<PerfRow>, bench: &str, legacy: (u64, f64), interned: (u64, f64)) {
    rows.push(PerfRow {
        bench: bench.to_string(),
        arm: "legacy".to_string(),
        iters: legacy.0,
        ns_per_op: legacy.1,
        ops_per_sec: 1e9 / legacy.1,
        speedup_vs_legacy: None,
    });
    rows.push(PerfRow {
        bench: bench.to_string(),
        arm: "interned".to_string(),
        iters: interned.0,
        ns_per_op: interned.1,
        ops_per_sec: 1e9 / interned.1,
        speedup_vs_legacy: Some(legacy.1 / interned.1),
    });
}

/// Runs every microbenchmark and returns the measured rows.
pub fn run(params: &PerfParams) -> Vec<PerfRow> {
    let budget = Duration::from_millis(params.measure_ms);
    let mut rows = Vec::new();

    // Input pool: realistic analyzed-vocabulary words, 2–3 terms per key.
    let vocab = build_vocabulary(params.vocab);
    let tuples: Vec<Vec<&str>> = (0..params.pool)
        .map(|i| {
            let a = (i * 7 + 13) % vocab.len();
            let b = (i * 31 + 101) % vocab.len();
            let c = (i * 57 + 229) % vocab.len();
            let mut t = vec![vocab[a].as_str(), vocab[b].as_str()];
            if i % 2 == 0 {
                t.push(vocab[c].as_str());
            }
            t
        })
        .collect();
    // Warm the interner so the interned arm measures the steady state (the
    // indexing phase interns the whole vocabulary long before queries arrive).
    for t in &tuples {
        let _ = TermKey::new(t.iter().copied());
    }

    // --- key_construct: analyzed terms → probe-ready key + ring id ---------
    // Each arm starts from what the analyzer hands its query pipeline: the
    // seed's analyzer emitted `String`s, the interned analyzer emits `TermId`s
    // (`Analyzer::analyze_query_ids`), so each arm constructs from its native
    // representation.
    let string_tuples: Vec<Vec<String>> = tuples
        .iter()
        .map(|t| t.iter().map(|s| (*s).to_string()).collect())
        .collect();
    let id_tuples: Vec<Vec<TermId>> = tuples
        .iter()
        .map(|t| t.iter().map(|s| TermId::intern(s)).collect())
        .collect();
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for t in &string_tuples {
            let key = legacy::LegacyTermKey::new(t.iter().map(String::as_str));
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for t in &id_tuples {
            let key = TermKey::from_term_ids(t.iter().copied());
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    push_pair(
        &mut rows,
        "key_construct",
        (legacy.0, legacy.1 / tuples.len() as f64),
        (interned.0, interned.1 / tuples.len() as f64),
    );

    // --- key_construct_from_str: same &str input for both arms -------------
    // Informational: includes the warm intern-map lookup the id path amortises
    // into analysis.
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for t in &tuples {
            let key = legacy::LegacyTermKey::new(t.iter().copied());
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for t in &tuples {
            let key = TermKey::new(t.iter().copied());
            acc = acc.wrapping_add(key.ring_id().0);
        }
        acc
    });
    push_pair(
        &mut rows,
        "key_construct_from_str",
        (legacy.0, legacy.1 / tuples.len() as f64),
        (interned.0, interned.1 / tuples.len() as f64),
    );

    // --- ring_id: hash an existing key onto the ring -----------------------
    let legacy_keys: Vec<legacy::LegacyTermKey> = tuples
        .iter()
        .map(|t| legacy::LegacyTermKey::new(t.iter().copied()))
        .collect();
    let interned_keys: Vec<TermKey> = tuples
        .iter()
        .map(|t| TermKey::new(t.iter().copied()))
        .collect();
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for k in &legacy_keys {
            acc = acc.wrapping_add(k.ring_id().0);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for k in &interned_keys {
            acc = acc.wrapping_add(k.ring_id().0);
        }
        acc
    });
    push_pair(
        &mut rows,
        "ring_id",
        (legacy.0, legacy.1 / legacy_keys.len() as f64),
        (interned.0, interned.1 / interned_keys.len() as f64),
    );

    // --- lattice_enum: enumerate the subset lattice of 3-term keys ---------
    let legacy = measure(budget, || {
        let mut acc = 0usize;
        for k in &legacy_keys {
            acc += k.all_subsets_desc().len();
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0usize;
        for k in &interned_keys {
            acc += k.all_subsets_desc().len();
        }
        acc
    });
    push_pair(
        &mut rows,
        "lattice_enum",
        (legacy.0, legacy.1 / legacy_keys.len() as f64),
        (interned.0, interned.1 / interned_keys.len() as f64),
    );

    // --- publish_keyops: the per-publish key-side work ---------------------
    // Seed per publish: ring_id (join + hash), wire_size (string walk), a deep
    // key clone and a delta posting-list clone crossed into the DHT closure.
    // Interned per publish: cached-hash copy, arithmetic wire_size, an inline
    // key copy; the delta is borrowed (modelled here as no copy).
    let delta = TruncatedPostingList::from_refs(
        (0..params.delta_refs).map(|i| ScoredRef {
            doc: DocId::new(0, i),
            score: f64::from(params.delta_refs - i),
        }),
        params.delta_refs as usize,
    );
    let legacy = measure(budget, || {
        let mut acc = 0u64;
        for k in &legacy_keys {
            acc = acc.wrapping_add(k.ring_id().0);
            acc = acc.wrapping_add(k.wire_size() as u64);
            let key_copy = k.clone();
            let delta_copy = delta.clone();
            acc = acc.wrapping_add(key_copy.len() as u64 + delta_copy.len() as u64);
        }
        acc
    });
    let interned = measure(budget, || {
        let mut acc = 0u64;
        for k in &interned_keys {
            acc = acc.wrapping_add(k.ring_id().0);
            acc = acc.wrapping_add(k.wire_size() as u64);
            let key_copy = k.clone();
            let delta_ref = &delta;
            acc = acc.wrapping_add(key_copy.len() as u64 + delta_ref.len() as u64);
        }
        acc
    });
    push_pair(
        &mut rows,
        "publish_keyops",
        (legacy.0, legacy.1 / legacy_keys.len() as f64),
        (interned.0, interned.1 / interned_keys.len() as f64),
    );

    // --- publish_e2e: the full routed publish call -------------------------
    // `interned` is the live call; `legacy-model` adds back the key-side work
    // the seed performed per call (measured on the same overlay state).
    let mut gi = GlobalIndex::new(DhtConfig::default(), params.seed, params.peers);
    let interned = {
        let mut i = 0usize;
        measure(budget, || {
            let k = &interned_keys[i % interned_keys.len()];
            i += 1;
            gi.publish_postings(i % params.peers, k, &delta, params.delta_refs as usize * 4)
                .expect("publish succeeds")
        })
    };
    let mut gi = GlobalIndex::new(DhtConfig::default(), params.seed, params.peers);
    let legacy_model = {
        let mut i = 0usize;
        measure(budget, || {
            let k = &interned_keys[i % interned_keys.len()];
            let lk = &legacy_keys[i % legacy_keys.len()];
            i += 1;
            // The removed seed work: join+hash, string wire walk, deep copies.
            black_box(lk.ring_id());
            black_box(lk.wire_size());
            black_box(lk.clone());
            black_box(delta.clone());
            gi.publish_postings(i % params.peers, k, &delta, params.delta_refs as usize * 4)
                .expect("publish succeeds")
        })
    };
    rows.push(PerfRow {
        bench: "publish_e2e".to_string(),
        arm: "legacy-model".to_string(),
        iters: legacy_model.0,
        ns_per_op: legacy_model.1,
        ops_per_sec: 1e9 / legacy_model.1,
        speedup_vs_legacy: None,
    });
    rows.push(PerfRow {
        bench: "publish_e2e".to_string(),
        arm: "interned".to_string(),
        iters: interned.0,
        ns_per_op: interned.1,
        ops_per_sec: 1e9 / interned.1,
        speedup_vs_legacy: Some(legacy_model.1 / interned.1),
    });

    // --- codec_encode / codec_decode: the posting-list wire codec ----------
    // A list shaped like a probe response at the default truncation bound:
    // documents scattered over 64 peers, Zipf-flavoured scores. The shape is
    // deliberately independent of `params` so the quick and full runs measure
    // identical per-op work (`perf_guard` compares these arms across runs).
    let wire_list = TruncatedPostingList::from_refs(
        (0..100u32).map(|i| ScoredRef {
            doc: DocId::new(i % 64, i * 7 % 512),
            score: 12.0 / f64::from(i + 1) + f64::from(i % 5) * 0.05,
        }),
        100,
    );
    let encode = measure(budget, || black_box(codec::encode_list(&wire_list, None)));
    rows.push(PerfRow {
        bench: "codec_encode".to_string(),
        arm: "codec".to_string(),
        iters: encode.0,
        ns_per_op: encode.1,
        ops_per_sec: 1e9 / encode.1,
        speedup_vs_legacy: None,
    });
    let frame = codec::encode_list(&wire_list, None);
    let decode = measure(budget, || {
        black_box(codec::decode_list(&frame).expect("frame decodes"))
    });
    rows.push(PerfRow {
        bench: "codec_decode".to_string(),
        arm: "codec".to_string(),
        iters: decode.0,
        ns_per_op: decode.1,
        ops_per_sec: 1e9 / decode.1,
        speedup_vs_legacy: None,
    });
    // Decoding under a floor exercises the block skip path.
    let mid = wire_list.refs()[wire_list.len() / 2].score;
    let floored = measure(budget, || {
        black_box(codec::decode_list_above(&frame, mid).expect("frame decodes"))
    });
    rows.push(PerfRow {
        bench: "codec_decode_floored".to_string(),
        arm: "codec".to_string(),
        iters: floored.0,
        ns_per_op: floored.1,
        ops_per_sec: 1e9 / floored.1,
        speedup_vs_legacy: None,
    });

    // --- planned_query: end-to-end plan + execute latency ------------------
    // Trajectory metric: the number future planner PRs must beat. The
    // `interned` arm is the live default path (codec round-trip + conservative
    // threshold probes); `threshold-off` isolates the thresholding cost.
    // Neither arm reports `speedup_vs_legacy` — that field always means "vs
    // the frozen seed replica", and this bench has no such arm.
    let corpus = workloads::corpus(params.docs, params.seed);
    let mut net = workloads::indexed_network(
        &corpus,
        Arc::new(Hdk::new(workloads::default_hdk())),
        params.peers,
        params.seed,
    );
    let log = workloads::query_log(&corpus, 64, false, params.seed);
    let off = {
        let mut i = 0usize;
        measure(budget, || {
            let q = &log.queries[i % log.queries.len()];
            i += 1;
            let request = QueryRequest::new(&q.text)
                .from_peer(i % params.peers)
                .threshold_probes(false);
            net.execute(&request).expect("query succeeds").results.len()
        })
    };
    let (iters, ns) = {
        let mut i = 0usize;
        measure(budget, || {
            let q = &log.queries[i % log.queries.len()];
            i += 1;
            let request = QueryRequest::new(&q.text).from_peer(i % params.peers);
            net.execute(&request).expect("query succeeds").results.len()
        })
    };
    rows.push(PerfRow {
        bench: "planned_query".to_string(),
        arm: "threshold-off".to_string(),
        iters: off.0,
        ns_per_op: off.1,
        ops_per_sec: 1e9 / off.1,
        speedup_vs_legacy: None,
    });
    rows.push(PerfRow {
        bench: "planned_query".to_string(),
        arm: "interned".to_string(),
        iters,
        ns_per_op: ns,
        ops_per_sec: 1e9 / ns,
        speedup_vs_legacy: None,
    });

    rows
}

/// The PR 3 fixed-width accounting for one posting-list response (12 bytes
/// per reference plus a 16-byte list header), kept as the frozen comparison
/// baseline for the wire trajectory.
fn pr3_list_bytes(entries: usize) -> u64 {
    (entries * 12 + 16) as u64
}

/// The PR 3 accounting for a key frame (4-byte length prefixes).
fn pr3_key_bytes(key: &TermKey) -> u64 {
    (4 + key.terms().iter().map(|t| 4 + t.len()).sum::<usize>()) as u64
}

/// Measures posting-list bytes per query on the `planned_query` workload under
/// four arms: the PR 3 fixed-width accounting model replayed over the same
/// responses, the codec (threshold off), and the codec with conservative /
/// aggressive threshold-aware probes.
///
/// The threshold arms are derived exactly: requests, routing and miss notices
/// are identical across probing modes (floor elision preserves the trace), so
/// `posting_bytes(threshold) = posting_bytes(codec) - (total(off) -
/// total(threshold))`.
pub fn run_wire(params: &PerfParams) -> Vec<WireRow> {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::query_log(&corpus, 32, false, params.seed);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();
    let build = || {
        workloads::indexed_network(
            &corpus,
            Arc::new(Hdk::new(workloads::default_hdk())),
            params.peers,
            params.seed,
        )
    };
    let mut off_net = build();
    let mut conservative_net = build();
    let mut aggressive_net = build();

    let n = queries.len() as f64;
    let mut posting_codec = 0u64;
    let mut posting_pr3 = 0u64;
    let mut key_delta = 0i64;
    let mut total_off = 0u64;
    let mut total_conservative = 0u64;
    let mut total_aggressive = 0u64;
    for (i, text) in queries.iter().enumerate() {
        let base = QueryRequest::new(text.clone()).from_peer(i % params.peers);
        let off = off_net
            .execute(&base.clone().threshold_probes(false))
            .expect("query succeeds");
        total_off += off.bytes;
        // With thresholding off, every found response shipped exactly the
        // stored list, so the per-arm posting bytes replay from the trace.
        for key in off.trace.found_keys() {
            let stored = &off_net
                .global_index()
                .peek(key)
                .expect("found key is stored")
                .postings;
            posting_codec += stored.wire_size() as u64;
            posting_pr3 += pr3_list_bytes(stored.len());
        }
        for key in off.trace.probed_keys() {
            key_delta += pr3_key_bytes(key) as i64 - key.wire_size() as i64;
        }
        total_conservative += conservative_net
            .execute(&base.clone())
            .expect("query")
            .bytes;
        total_aggressive += aggressive_net
            .execute(&base.clone().threshold_mode(ThresholdMode::Aggressive))
            .expect("query")
            .bytes;
    }
    // The derivation assumes a threshold run never spends more than the off
    // run (floor elision preserves the trace). That holds by construction for
    // unbudgeted queries; assert it so a future workload that violates it
    // fails loudly instead of underflowing into absurd rows.
    for (arm, total) in [
        ("conservative", total_conservative),
        ("aggressive", total_aggressive),
    ] {
        assert!(
            total <= total_off,
            "{arm} threshold run spent {total} bytes > unthresholded {total_off}; \
             the posting-byte derivation no longer applies"
        );
    }
    let posting_conservative = posting_codec - (total_off - total_conservative);
    let posting_aggressive = posting_codec - (total_off - total_aggressive);
    let total_pr3 = (total_off + posting_pr3 - posting_codec) as i64 + key_delta;
    let reduction = |posting: u64| Some(posting_pr3 as f64 / posting.max(1) as f64);
    vec![
        WireRow {
            arm: "pr3-f64".to_string(),
            posting_bytes_per_query: posting_pr3 as f64 / n,
            total_bytes_per_query: total_pr3 as f64 / n,
            reduction_vs_pr3: None,
        },
        WireRow {
            arm: "codec".to_string(),
            posting_bytes_per_query: posting_codec as f64 / n,
            total_bytes_per_query: total_off as f64 / n,
            reduction_vs_pr3: reduction(posting_codec),
        },
        WireRow {
            arm: "codec+threshold".to_string(),
            posting_bytes_per_query: posting_conservative as f64 / n,
            total_bytes_per_query: total_conservative as f64 / n,
            reduction_vs_pr3: reduction(posting_conservative),
        },
        WireRow {
            arm: "codec+aggressive".to_string(),
            posting_bytes_per_query: posting_aggressive as f64 / n,
            total_bytes_per_query: total_aggressive as f64 / n,
            reduction_vs_pr3: reduction(posting_aggressive),
        },
    ]
}

/// Prints the result table.
pub fn print(rows: &[PerfRow]) {
    let mut table = Table::new(
        "P1: key/posting hot paths (legacy string keys vs interned keys)",
        &["bench", "arm", "ns/op", "ops/s", "speedup"],
    );
    for r in rows {
        table.row(&[
            r.bench.clone(),
            r.arm.clone(),
            fmt_f(r.ns_per_op, 1),
            fmt_f(r.ops_per_sec, 0),
            r.speedup_vs_legacy
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.print();
}

/// Prints the wire bytes-per-query table.
pub fn print_wire(rows: &[WireRow]) {
    let mut table = Table::new(
        "P1-wire: posting-list bytes per query (PR 3 accounting vs codec vs threshold probes)",
        &["arm", "posting bytes/query", "total bytes/query", "vs pr3"],
    );
    for r in rows {
        table.row(&[
            r.arm.clone(),
            fmt_f(r.posting_bytes_per_query, 0),
            fmt_f(r.total_bytes_per_query, 0),
            r.reduction_vs_pr3
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.print();
}

/// The `BENCH_perf.json` document: parameters plus measured rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Experiment identifier.
    pub bench: String,
    /// Whether the quick configuration ran.
    pub quick: bool,
    /// Parameters used.
    pub params: PerfParams,
    /// Measured rows.
    pub rows: Vec<PerfRow>,
    /// Posting-list bytes-per-query arms (PR 3 accounting vs codec vs
    /// threshold-aware probes).
    pub wire: Vec<WireRow>,
}

/// Serialises a report for `BENCH_perf.json`.
pub fn report(
    params: &PerfParams,
    quick: bool,
    rows: Vec<PerfRow>,
    wire: Vec<WireRow>,
) -> PerfReport {
    PerfReport {
        bench: "perf".to_string(),
        quick,
        params: params.clone(),
        rows,
        wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_replica_matches_interned_semantics() {
        let terms = ["peer", "retriev", "overlai"];
        let legacy = legacy::LegacyTermKey::new(terms);
        let interned = TermKey::new(terms);
        assert_eq!(legacy.canonical(), interned.canonical());
        assert_eq!(legacy.ring_id(), interned.ring_id());
        // The live key now reports the codec frame length (varint prefixes),
        // strictly below the seed's 4-byte-prefix accounting the replica keeps.
        assert!(interned.wire_size() < legacy.wire_size());
        assert_eq!(legacy.len(), interned.len());
        assert!(!legacy.is_empty());
        let l: Vec<String> = legacy
            .all_subsets_desc()
            .iter()
            .map(|k| k.canonical())
            .collect();
        let i: Vec<String> = interned
            .all_subsets_desc()
            .iter()
            .map(|k| k.canonical())
            .collect();
        assert_eq!(l, i);
    }

    #[test]
    fn perf_smoke_produces_all_benchmarks_with_speedups() {
        let params = PerfParams {
            measure_ms: 2,
            pool: 16,
            vocab: 120,
            peers: 8,
            docs: 60,
            ..PerfParams::quick()
        };
        let rows = run(&params);
        let benches: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.bench.as_str()).collect();
        for expected in [
            "key_construct",
            "key_construct_from_str",
            "ring_id",
            "lattice_enum",
            "publish_keyops",
            "publish_e2e",
            "codec_encode",
            "codec_decode",
            "codec_decode_floored",
            "planned_query",
        ] {
            assert!(benches.contains(expected), "missing bench {expected}");
        }
        for r in &rows {
            assert!(r.ns_per_op > 0.0, "{r:?}");
            assert!(r.iters > 0, "{r:?}");
        }
        // Every paired benchmark reports a speedup on its interned arm.
        for bench in ["key_construct", "ring_id", "lattice_enum", "publish_keyops"] {
            let s = rows
                .iter()
                .find(|r| r.bench == bench && r.arm == "interned")
                .and_then(|r| r.speedup_vs_legacy)
                .unwrap_or(0.0);
            assert!(s > 0.0, "{bench} has no speedup recorded");
        }
    }

    #[test]
    fn wire_arms_reduce_posting_bytes_vs_pr3_accounting() {
        let params = PerfParams {
            measure_ms: 2,
            pool: 16,
            vocab: 200,
            peers: 8,
            docs: 150,
            ..PerfParams::quick()
        };
        let rows = run_wire(&params);
        let arm = |name: &str| rows.iter().find(|r| r.arm == name).unwrap();
        assert_eq!(rows.len(), 4);
        // Even at smoke scale the codec beats the fixed-width accounting, and
        // each threshold arm never ships more than the arm it tightens.
        let pr3 = arm("pr3-f64");
        let codec = arm("codec");
        let conservative = arm("codec+threshold");
        let aggressive = arm("codec+aggressive");
        assert!(codec.posting_bytes_per_query < pr3.posting_bytes_per_query);
        assert!(codec.reduction_vs_pr3.unwrap() > 1.0);
        assert!(conservative.posting_bytes_per_query <= codec.posting_bytes_per_query);
        assert!(aggressive.posting_bytes_per_query <= conservative.posting_bytes_per_query);
        for r in &rows {
            assert!(r.posting_bytes_per_query > 0.0, "{r:?}");
            assert!(
                r.total_bytes_per_query >= r.posting_bytes_per_query,
                "{r:?}"
            );
        }
    }

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn codec_and_threshold_arms_halve_posting_bytes_at_quick_scale() {
        // The acceptance bar: ≥2x posting-list bytes-per-query reduction vs
        // the PR 3 f64 wire accounting, with top-k equality pinned separately
        // by `alvisp2p-core/tests/proptest_codec.rs`.
        let rows = run_wire(&PerfParams::quick());
        for arm in ["codec", "codec+threshold"] {
            let row = rows.iter().find(|r| r.arm == arm).unwrap();
            assert!(
                row.reduction_vs_pr3.unwrap() >= 2.0,
                "{arm} reduction {:?} below the 2x acceptance bar",
                row.reduction_vs_pr3
            );
        }
    }
}
