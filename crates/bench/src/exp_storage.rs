//! **E3 — Index size and storage scalability of HDK.**
//!
//! The paper claims (§1) that "the number of indexing term combinations remains
//! scalable and the transmitted posting lists never exceed a constant size". This
//! experiment builds the HDK index for growing collections and reports the number of
//! keys per level, the total stored postings, the storage bytes and the per-document
//! storage cost; a second sweep varies `df_max`, and an ablation switches the
//! proximity-window filter off to show how it contains the combinatorial explosion of
//! candidate keys.

use alvisp2p_core::hdk::HdkConfig;
use alvisp2p_core::stats::imbalance;
use alvisp2p_core::strategy::Hdk;
use serde::Serialize;
use std::sync::Arc;

use crate::table::{fmt_bytes, fmt_f, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// One row of the E3 output.
#[derive(Clone, Debug, Serialize)]
pub struct StorageRow {
    /// Number of documents.
    pub docs: usize,
    /// `df_max` used.
    pub df_max: usize,
    /// Whether the proximity filter was active.
    pub proximity_filter: bool,
    /// Activated keys per level (level 1, 2, 3).
    pub keys_per_level: Vec<usize>,
    /// Total activated keys.
    pub total_keys: usize,
    /// Total stored posting references.
    pub total_postings: usize,
    /// Total storage bytes of the global index.
    pub storage_bytes: usize,
    /// Storage bytes divided by the number of documents.
    pub bytes_per_doc: f64,
    /// Keys divided by the number of documents.
    pub keys_per_doc: f64,
    /// Load imbalance of per-peer key counts (max / mean).
    pub load_imbalance: f64,
    /// Indexing traffic in bytes.
    pub indexing_bytes: u64,
}

/// Parameters of the storage experiment.
#[derive(Clone, Debug, Serialize)]
pub struct StorageParams {
    /// Collection sizes to sweep.
    pub doc_sweep: Vec<usize>,
    /// `df_max` values to sweep at the largest collection size.
    pub df_max_sweep: Vec<usize>,
    /// Number of peers.
    pub peers: usize,
    /// Whether to include the proximity-filter ablation.
    pub ablation: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for StorageParams {
    fn default() -> Self {
        StorageParams {
            doc_sweep: vec![500, 1_000, 2_000, 4_000, 8_000],
            df_max_sweep: vec![25, 50, 100, 200, 400],
            peers: 64,
            ablation: true,
            seed: DEFAULT_SEED,
        }
    }
}

impl StorageParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        StorageParams {
            doc_sweep: vec![150, 300],
            df_max_sweep: vec![20, 50],
            peers: 16,
            ablation: true,
            seed: DEFAULT_SEED,
        }
    }
}

/// Builds one HDK index and summarises its size.
pub fn build_one(docs: usize, peers: usize, config: HdkConfig, seed: u64) -> StorageRow {
    let corpus = workloads::corpus(docs, seed);
    let df_max = config.df_max;
    let proximity_filter = config.use_proximity_filter;
    let net = workloads::indexed_network(&corpus, Arc::new(Hdk::new(config)), peers, seed);
    let report = net.last_build_report().cloned().unwrap_or_default();
    let levels = net.level_reports();
    let max_level = levels.iter().map(|l| l.level).max().unwrap_or(1);
    let mut keys_per_level = vec![0usize; max_level];
    for e in net.global_index().entries() {
        if e.activated && e.key.len() <= max_level {
            keys_per_level[e.key.len() - 1] += 1;
        }
    }
    let load: Vec<f64> = net
        .index_load_distribution()
        .iter()
        .map(|(k, _)| *k as f64)
        .collect();
    StorageRow {
        docs,
        df_max,
        proximity_filter,
        total_keys: net.global_index().activated_keys(),
        total_postings: net.global_index().total_postings(),
        storage_bytes: net.global_index().total_storage_bytes(),
        bytes_per_doc: net.global_index().total_storage_bytes() as f64 / docs as f64,
        keys_per_doc: net.global_index().activated_keys() as f64 / docs as f64,
        load_imbalance: imbalance(&load),
        indexing_bytes: report.indexing_bytes,
        keys_per_level,
    }
}

/// Runs the full E3 sweep.
pub fn run(params: &StorageParams) -> Vec<StorageRow> {
    let mut rows = Vec::new();
    let base = workloads::default_hdk();
    for &docs in &params.doc_sweep {
        rows.push(build_one(docs, params.peers, base.clone(), params.seed));
    }
    let largest = params.doc_sweep.last().copied().unwrap_or(1_000);
    for &df_max in &params.df_max_sweep {
        if df_max != base.df_max {
            rows.push(build_one(
                largest,
                params.peers,
                HdkConfig {
                    df_max,
                    truncation_k: df_max,
                    ..base.clone()
                },
                params.seed,
            ));
        }
    }
    if params.ablation {
        // Proximity-filter ablation at a moderate collection size (the unfiltered
        // candidate set grows quickly, which is exactly the point).
        let docs = params.doc_sweep[params.doc_sweep.len() / 2];
        rows.push(build_one(
            docs,
            params.peers,
            HdkConfig {
                use_proximity_filter: false,
                ..base.clone()
            },
            params.seed,
        ));
    }
    rows
}

/// Prints the E3 tables.
pub fn print(params: &StorageParams, rows: &[StorageRow]) {
    let base_df = workloads::default_hdk().df_max;
    let mut t = Table::new(
        "E3a: HDK index size vs collection size",
        &[
            "docs",
            "keys L1",
            "keys L2",
            "keys L3",
            "total keys",
            "postings",
            "storage",
            "keys/doc",
            "imbalance",
        ],
    );
    for r in rows
        .iter()
        .filter(|r| r.df_max == base_df && r.proximity_filter)
    {
        let l = |i: usize| r.keys_per_level.get(i).copied().unwrap_or(0).to_string();
        t.row(&[
            r.docs.to_string(),
            l(0),
            l(1),
            l(2),
            r.total_keys.to_string(),
            r.total_postings.to_string(),
            fmt_bytes(r.storage_bytes as u64),
            fmt_f(r.keys_per_doc, 2),
            fmt_f(r.load_imbalance, 2),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "E3b: HDK index size vs df_max (largest collection)",
        &[
            "df_max",
            "total keys",
            "postings",
            "storage",
            "indexing bytes",
        ],
    );
    let largest = params.doc_sweep.last().copied().unwrap_or(0);
    for r in rows
        .iter()
        .filter(|r| r.docs == largest && r.proximity_filter)
    {
        t2.row(&[
            r.df_max.to_string(),
            r.total_keys.to_string(),
            r.total_postings.to_string(),
            fmt_bytes(r.storage_bytes as u64),
            fmt_bytes(r.indexing_bytes),
        ]);
    }
    t2.print();

    if params.ablation {
        let mut t3 = Table::new(
            "E3c: proximity-window filter ablation",
            &[
                "docs",
                "proximity filter",
                "total keys",
                "postings",
                "storage",
            ],
        );
        for r in rows.iter().filter(|r| {
            !r.proximity_filter || r.docs == params.doc_sweep[params.doc_sweep.len() / 2]
        }) {
            if r.df_max != base_df {
                continue;
            }
            t3.row(&[
                r.docs.to_string(),
                if r.proximity_filter { "on" } else { "off" }.to_string(),
                r.total_keys.to_string(),
                r.total_postings.to_string(),
                fmt_bytes(r.storage_bytes as u64),
            ]);
        }
        t3.print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn index_grows_with_the_collection_and_stays_distributed() {
        let small = build_one(
            120,
            8,
            HdkConfig {
                df_max: 20,
                truncation_k: 20,
                ..Default::default()
            },
            5,
        );
        let large = build_one(
            360,
            8,
            HdkConfig {
                df_max: 20,
                truncation_k: 20,
                ..Default::default()
            },
            5,
        );
        assert!(large.total_keys > small.total_keys);
        assert!(large.total_postings > small.total_postings);
        assert!(large.storage_bytes > small.storage_bytes);
        // Level-1 (single-term) keys exist and grow with the vocabulary.
        assert!(small.keys_per_level[0] > 0);
        assert!(large.keys_per_level[0] > small.keys_per_level[0]);
        // The per-key storage stays bounded by the truncation: postings per key never
        // exceed the configured bound on average.
        assert!(large.total_postings as f64 / large.total_keys as f64 <= 20.0 + 1e-9);
        // The index is spread over the peers rather than concentrated on one.
        assert!(small.load_imbalance < 8.0);
        assert!(large.load_imbalance < 8.0);
    }

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn smaller_df_max_creates_more_multi_term_keys() {
        let strict = build_one(
            240,
            8,
            HdkConfig {
                df_max: 5,
                truncation_k: 5,
                ..Default::default()
            },
            6,
        );
        let loose = build_one(
            240,
            8,
            HdkConfig {
                df_max: 60,
                truncation_k: 60,
                ..Default::default()
            },
            6,
        );
        let multi = |r: &StorageRow| r.keys_per_level.iter().skip(1).sum::<usize>();
        assert!(
            multi(&strict) > multi(&loose),
            "strict {} vs loose {}",
            multi(&strict),
            multi(&loose)
        );
    }

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn proximity_filter_contains_the_candidate_explosion() {
        let with = build_one(
            240,
            8,
            HdkConfig {
                df_max: 10,
                truncation_k: 10,
                ..Default::default()
            },
            7,
        );
        let without = build_one(
            240,
            8,
            HdkConfig {
                df_max: 10,
                truncation_k: 10,
                use_proximity_filter: false,
                ..Default::default()
            },
            7,
        );
        assert!(
            without.total_keys > with.total_keys,
            "without filter {} vs with {}",
            without.total_keys,
            with.total_keys
        );
    }
}
