//! **E1 — Figure 1: query-lattice processing.**
//!
//! Reproduces the paper's Figure 1 exactly: the query `{a, b, c}` is processed against
//! a global index in which the key `bc` is indexed with a *truncated* posting list and
//! the single terms are indexed too. The experiment prints, for every node of the
//! query lattice, whether it was probed, found (truncated or complete), missing or
//! skipped — the expected output is the probed/skipped pattern of the figure
//! (`abc, ab, ac, bc, a` probed; `b, c` skipped; result = union of `bc` and `a`).

use alvisp2p_core::global_index::GlobalIndex;
use alvisp2p_core::key::TermKey;
use alvisp2p_core::lattice::{explore_lattice, LatticeConfig, NodeOutcome};
use alvisp2p_core::plan::{
    BestEffort, CursorStep, GreedyCost, PlanCtx, PlanCursor, PlanDecision, PlanHints, Planner,
};
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_core::ranking::GlobalRankingStats;
use alvisp2p_dht::DhtConfig;
use alvisp2p_netsim::TrafficCategory;
use alvisp2p_textindex::{CollectionStats, DocId};
use serde::Serialize;
use std::collections::BTreeMap;

use crate::table::Table;

/// One row of the E1 output: a lattice node and what happened to it.
#[derive(Clone, Debug, Serialize)]
pub struct LatticeRow {
    /// The lattice node (canonical key form).
    pub key: String,
    /// Outcome label: "found (truncated)", "found (complete)", "missing", "skipped".
    pub outcome: String,
    /// Whether this key's posting list contributes to the final result union.
    pub in_result: bool,
}

/// Parameters of the Figure 1 scenario.
#[derive(Clone, Debug, Serialize)]
pub struct LatticeParams {
    /// Number of peers in the overlay.
    pub peers: usize,
    /// How many documents match the key `bc` (more than `capacity`, so it truncates).
    pub bc_matches: u32,
    /// Posting-list capacity (the truncation bound).
    pub capacity: usize,
    /// Whether the lattice below truncated keys is pruned (the Figure 1 approximation).
    pub prune_below_truncated: bool,
}

impl Default for LatticeParams {
    fn default() -> Self {
        LatticeParams {
            peers: 16,
            bc_matches: 12,
            capacity: 5,
            prune_below_truncated: true,
        }
    }
}

/// Builds the Figure 1 index: key `bc` activated with a truncated posting list,
/// the single terms activated too, everything else missing.
fn build_figure1_index(params: &LatticeParams) -> GlobalIndex {
    let mut index = GlobalIndex::new(DhtConfig::default(), 1, params.peers);

    let list = |n: u32, offset: u32| {
        TruncatedPostingList::from_refs(
            (0..n).map(|i| ScoredRef {
                doc: DocId::new(0, offset + i),
                score: f64::from(n - i),
            }),
            params.capacity,
        )
    };
    // bc: more matches than the capacity → truncated.
    index
        .publish_postings(
            0,
            &TermKey::new(["b", "c"]),
            &list(params.bc_matches, 100),
            params.capacity,
        )
        .unwrap();
    // The single-term index always exists.
    index
        .publish_postings(0, &TermKey::single("a"), &list(3, 0), params.capacity)
        .unwrap();
    index
        .publish_postings(0, &TermKey::single("b"), &list(4, 200), params.capacity)
        .unwrap();
    index
        .publish_postings(0, &TermKey::single("c"), &list(4, 300), params.capacity)
        .unwrap();
    index
}

/// Builds the Figure 1 index and runs the query `{a, b, c}` through the lattice.
pub fn run(params: &LatticeParams) -> Vec<LatticeRow> {
    let mut index = build_figure1_index(params);

    let config = LatticeConfig {
        prune_below_truncated: params.prune_below_truncated,
        ..Default::default()
    };
    let query = TermKey::new(["a", "b", "c"]);
    let result = explore_lattice(&query, &config, |k| {
        index.probe(1, k, 1, params.capacity, None)
    })
    .expect("exploration succeeds");

    let retrieved: Vec<String> = result
        .retrieved
        .iter()
        .map(|(k, _)| k.canonical())
        .collect();
    result
        .trace
        .nodes
        .iter()
        .map(|(key, outcome)| LatticeRow {
            key: key.canonical(),
            outcome: match outcome {
                NodeOutcome::Found { truncated: true } => "found (truncated)".to_string(),
                NodeOutcome::Found { truncated: false } => "found (complete)".to_string(),
                NodeOutcome::Missing => "missing".to_string(),
                NodeOutcome::Skipped => "skipped".to_string(),
                NodeOutcome::TooLong => "not probed (too long)".to_string(),
                NodeOutcome::Failed { cause } => format!("failed ({cause})"),
            },
            in_result: retrieved.contains(&key.canonical()),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E1b — planned-vs-best-effort arm: the same Figure 1 scenario through the
// plan → execute pipeline, under a byte budget.
// ---------------------------------------------------------------------------

/// One row of the E1b output: a scheduled lattice node of one planner's plan and
/// what executing it did.
#[derive(Clone, Debug, Serialize)]
pub struct PlannedLatticeRow {
    /// Planner label ("best-effort" or "greedy-cost").
    pub planner: String,
    /// Position in the schedule.
    pub position: usize,
    /// The lattice node (canonical key form).
    pub key: String,
    /// The planner's decision ("probe" or "skip").
    pub decision: String,
    /// Worst-case byte estimate of the probe.
    pub est_bytes: u64,
    /// The planner's benefit/cost priority.
    pub priority: f64,
    /// What executing the schedule did to the node.
    pub outcome: String,
}

/// Summary of one planner's budgeted execution of the Figure 1 scenario.
#[derive(Clone, Debug, Serialize)]
pub struct PlannedSummary {
    /// Planner label.
    pub planner: String,
    /// The byte budget.
    pub byte_budget: u64,
    /// Probes actually sent.
    pub probes: usize,
    /// Retrieval bytes actually spent.
    pub bytes: u64,
    /// Keys whose posting lists were retrieved (the result union).
    pub retrieved: Vec<String>,
    /// Whether a budget withheld at least one probe.
    pub budget_exhausted: bool,
}

/// Synthetic global ranking statistics consistent with the Figure 1 index, so
/// the cost-based planner has document frequencies to estimate with.
fn figure1_stats(params: &LatticeParams) -> GlobalRankingStats {
    let fragment = CollectionStats {
        doc_count: u64::from(params.bc_matches) + 11,
        total_terms: 1_000,
        doc_frequencies: [
            ("a".to_string(), 3u64),
            ("b".to_string(), u64::from(params.bc_matches)),
            ("c".to_string(), u64::from(params.bc_matches)),
        ]
        .into_iter()
        .collect::<BTreeMap<String, u64>>(),
    };
    GlobalRankingStats::aggregate([&fragment])
}

/// Plans and executes the Figure 1 query with `planner` under `byte_budget`,
/// returning the schedule rows and the execution summary.
pub fn run_planned(
    params: &LatticeParams,
    planner: &dyn Planner,
    byte_budget: u64,
) -> (Vec<PlannedLatticeRow>, PlannedSummary) {
    let mut index = build_figure1_index(params);
    let ranking = figure1_stats(params);
    let query = TermKey::new(["a", "b", "c"]);
    let lattice = LatticeConfig {
        prune_below_truncated: params.prune_below_truncated,
        ..Default::default()
    };
    let ctx = PlanCtx {
        query_key: &query,
        origin: 1,
        lattice: lattice.clone(),
        hints: PlanHints::default(),
        capacity: params.capacity,
        ranking: &ranking,
        global: &index,
        sketches: None,
        byte_budget: Some(byte_budget),
        hop_budget: None,
    };
    let plan = planner.plan(&ctx);

    let base = index.stats().category(TrafficCategory::Retrieval).bytes;
    let mut cursor = PlanCursor::new(plan.clone(), &lattice, Some(byte_budget), None);
    loop {
        let spent = index.stats().category(TrafficCategory::Retrieval).bytes - base;
        match cursor.next_key(spent) {
            CursorStep::Done => break,
            CursorStep::Probe(key) => {
                let probe = index
                    .probe(1, &key, 1, params.capacity, None)
                    .expect("probe succeeds");
                cursor.record(probe);
            }
        }
    }
    let (result, budget_exhausted) = cursor.finish();

    let rows = plan
        .nodes
        .iter()
        .enumerate()
        .map(|(position, node)| PlannedLatticeRow {
            planner: plan.planner.clone(),
            position,
            key: node.key.canonical(),
            decision: match node.decision {
                PlanDecision::Probe => "probe".to_string(),
                PlanDecision::Skip | PlanDecision::SkipTooLong => "skip".to_string(),
            },
            est_bytes: node.est_bytes,
            priority: node.priority,
            outcome: result
                .trace
                .outcome_of(&node.key)
                .map(|o| match o {
                    NodeOutcome::Found { truncated: true } => "found (truncated)".to_string(),
                    NodeOutcome::Found { truncated: false } => "found (complete)".to_string(),
                    NodeOutcome::Missing => "missing".to_string(),
                    NodeOutcome::Skipped => "skipped".to_string(),
                    NodeOutcome::TooLong => "not probed (too long)".to_string(),
                    NodeOutcome::Failed { cause } => format!("failed ({cause})"),
                })
                .unwrap_or_default(),
        })
        .collect();
    let summary = PlannedSummary {
        planner: plan.planner.clone(),
        byte_budget,
        probes: result.trace.probes,
        bytes: index.stats().category(TrafficCategory::Retrieval).bytes - base,
        retrieved: result
            .retrieved
            .iter()
            .map(|(k, _)| k.canonical())
            .collect(),
        budget_exhausted,
    };
    (rows, summary)
}

/// Prints the E1b schedule and summary tables for both planners.
pub fn print_planned(params: &LatticeParams, byte_budget: u64) -> Vec<PlannedSummary> {
    let mut summaries = Vec::new();
    let mut t = Table::new(
        format!("E1b: planned execution of {{a,b,c}} under a {byte_budget}-byte budget"),
        &[
            "planner",
            "#",
            "node",
            "decision",
            "est bytes",
            "priority",
            "outcome",
        ],
    );
    for planner in [&BestEffort as &dyn Planner, &GreedyCost::default()] {
        let (rows, summary) = run_planned(params, planner, byte_budget);
        for r in &rows {
            t.row(&[
                r.planner.clone(),
                r.position.to_string(),
                r.key.clone(),
                r.decision.clone(),
                r.est_bytes.to_string(),
                format!("{:.4}", r.priority),
                r.outcome.clone(),
            ]);
        }
        summaries.push(summary);
    }
    t.print();
    let mut s = Table::new(
        "E1b summary: probes / bytes / retrieved union per planner",
        &[
            "planner",
            "budget",
            "probes",
            "bytes",
            "retrieved",
            "truncated by budget",
        ],
    );
    for sum in &summaries {
        s.row(&[
            sum.planner.clone(),
            sum.byte_budget.to_string(),
            sum.probes.to_string(),
            sum.bytes.to_string(),
            sum.retrieved.join(" "),
            if sum.budget_exhausted { "yes" } else { "no" }.to_string(),
        ]);
    }
    s.print();
    summaries
}

/// Prints the E1 table.
pub fn print(rows: &[LatticeRow]) {
    let mut t = Table::new(
        "E1 / Figure 1: processing of the query {a,b,c} with key bc indexed (truncated)",
        &["lattice node", "outcome", "in result union"],
    );
    for r in rows {
        t.row(&[
            r.key.clone(),
            r.outcome.clone(),
            if r.in_result { "yes" } else { "" }.to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure_1_pattern() {
        let rows = run(&LatticeParams::default());
        assert_eq!(rows.len(), 7);
        let outcome_of = |key: &str| {
            rows.iter()
                .find(|r| r.key == key)
                .map(|r| r.outcome.clone())
                .unwrap_or_default()
        };
        assert_eq!(outcome_of("a+b+c"), "missing");
        assert_eq!(outcome_of("a+b"), "missing");
        assert_eq!(outcome_of("a+c"), "missing");
        assert_eq!(outcome_of("b+c"), "found (truncated)");
        assert_eq!(outcome_of("a"), "found (complete)");
        assert_eq!(outcome_of("b"), "skipped");
        assert_eq!(outcome_of("c"), "skipped");
        // The result union comes from bc and a, exactly as in the paper.
        let in_result: Vec<&str> = rows
            .iter()
            .filter(|r| r.in_result)
            .map(|r| r.key.as_str())
            .collect();
        assert_eq!(in_result, vec!["b+c", "a"]);
    }

    #[test]
    fn without_pruning_the_singles_are_probed() {
        let rows = run(&LatticeParams {
            prune_below_truncated: false,
            ..Default::default()
        });
        let skipped = rows.iter().filter(|r| r.outcome == "skipped").count();
        assert_eq!(skipped, 0);
        let found = rows
            .iter()
            .filter(|r| r.outcome.starts_with("found"))
            .count();
        assert_eq!(found, 4); // bc, a, b, c
    }

    #[test]
    fn planned_arm_greedy_retrieves_the_union_within_a_budget_best_effort_wastes() {
        let params = LatticeParams::default();
        // Generous budget: both planners end with the Figure 1 result union.
        let (_, best_loose) = run_planned(&params, &BestEffort, 1_000_000);
        let (_, greedy_loose) = run_planned(&params, &GreedyCost::default(), 1_000_000);
        assert_eq!(best_loose.retrieved, vec!["b+c", "a"]);
        let mut greedy_sorted = greedy_loose.retrieved.clone();
        greedy_sorted.sort();
        assert_eq!(greedy_sorted, vec!["a", "b+c"]);
        assert!(!greedy_loose.budget_exhausted);

        // Tight budget (enough for roughly two probes under the codec's byte
        // accounting): the cost-based plan spends it on the keys that are
        // actually indexed and still retrieves the full union, while the
        // fixed-order cutoff burns it on the missing multi-term prefixes. The
        // Reserve policy also never exceeds the budget, whereas the cutoff may
        // overshoot.
        let budget = 800;
        let (_, best) = run_planned(&params, &BestEffort, budget);
        let (_, greedy) = run_planned(&params, &GreedyCost::default(), budget);
        assert!(greedy.bytes <= budget, "greedy spent {}", greedy.bytes);
        assert!(
            greedy.retrieved.len() >= best.retrieved.len(),
            "greedy {:?} vs best-effort {:?}",
            greedy.retrieved,
            best.retrieved
        );
        assert!(greedy.retrieved.contains(&"a".to_string()));
        assert!(greedy.retrieved.contains(&"b+c".to_string()));
        assert!(best.retrieved.is_empty());
    }
}
