//! **E1 — Figure 1: query-lattice processing.**
//!
//! Reproduces the paper's Figure 1 exactly: the query `{a, b, c}` is processed against
//! a global index in which the key `bc` is indexed with a *truncated* posting list and
//! the single terms are indexed too. The experiment prints, for every node of the
//! query lattice, whether it was probed, found (truncated or complete), missing or
//! skipped — the expected output is the probed/skipped pattern of the figure
//! (`abc, ab, ac, bc, a` probed; `b, c` skipped; result = union of `bc` and `a`).

use alvisp2p_core::global_index::GlobalIndex;
use alvisp2p_core::key::TermKey;
use alvisp2p_core::lattice::{explore_lattice, LatticeConfig, NodeOutcome};
use alvisp2p_core::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_dht::DhtConfig;
use alvisp2p_textindex::DocId;
use serde::Serialize;

use crate::table::Table;

/// One row of the E1 output: a lattice node and what happened to it.
#[derive(Clone, Debug, Serialize)]
pub struct LatticeRow {
    /// The lattice node (canonical key form).
    pub key: String,
    /// Outcome label: "found (truncated)", "found (complete)", "missing", "skipped".
    pub outcome: String,
    /// Whether this key's posting list contributes to the final result union.
    pub in_result: bool,
}

/// Parameters of the Figure 1 scenario.
#[derive(Clone, Debug, Serialize)]
pub struct LatticeParams {
    /// Number of peers in the overlay.
    pub peers: usize,
    /// How many documents match the key `bc` (more than `capacity`, so it truncates).
    pub bc_matches: u32,
    /// Posting-list capacity (the truncation bound).
    pub capacity: usize,
    /// Whether the lattice below truncated keys is pruned (the Figure 1 approximation).
    pub prune_below_truncated: bool,
}

impl Default for LatticeParams {
    fn default() -> Self {
        LatticeParams {
            peers: 16,
            bc_matches: 12,
            capacity: 5,
            prune_below_truncated: true,
        }
    }
}

/// Builds the Figure 1 index and runs the query `{a, b, c}` through the lattice.
pub fn run(params: &LatticeParams) -> Vec<LatticeRow> {
    let mut index = GlobalIndex::new(DhtConfig::default(), 1, params.peers);

    let list = |n: u32, offset: u32| {
        TruncatedPostingList::from_refs(
            (0..n).map(|i| ScoredRef {
                doc: DocId::new(0, offset + i),
                score: f64::from(n - i),
            }),
            params.capacity,
        )
    };
    // bc: more matches than the capacity → truncated.
    index
        .publish_postings(
            0,
            &TermKey::new(["b", "c"]),
            &list(params.bc_matches, 100),
            params.capacity,
        )
        .unwrap();
    // The single-term index always exists.
    index
        .publish_postings(0, &TermKey::single("a"), &list(3, 0), params.capacity)
        .unwrap();
    index
        .publish_postings(0, &TermKey::single("b"), &list(4, 200), params.capacity)
        .unwrap();
    index
        .publish_postings(0, &TermKey::single("c"), &list(4, 300), params.capacity)
        .unwrap();

    let config = LatticeConfig {
        prune_below_truncated: params.prune_below_truncated,
        ..Default::default()
    };
    let query = TermKey::new(["a", "b", "c"]);
    let result = explore_lattice(&query, &config, |k| index.probe(1, k, 1, params.capacity))
        .expect("exploration succeeds");

    let retrieved: Vec<String> = result
        .retrieved
        .iter()
        .map(|(k, _)| k.canonical())
        .collect();
    result
        .trace
        .nodes
        .iter()
        .map(|(key, outcome)| LatticeRow {
            key: key.canonical(),
            outcome: match outcome {
                NodeOutcome::Found { truncated: true } => "found (truncated)".to_string(),
                NodeOutcome::Found { truncated: false } => "found (complete)".to_string(),
                NodeOutcome::Missing => "missing".to_string(),
                NodeOutcome::Skipped => "skipped".to_string(),
                NodeOutcome::TooLong => "not probed (too long)".to_string(),
            },
            in_result: retrieved.contains(&key.canonical()),
        })
        .collect()
}

/// Prints the E1 table.
pub fn print(rows: &[LatticeRow]) {
    let mut t = Table::new(
        "E1 / Figure 1: processing of the query {a,b,c} with key bc indexed (truncated)",
        &["lattice node", "outcome", "in result union"],
    );
    for r in rows {
        t.row(&[
            r.key.clone(),
            r.outcome.clone(),
            if r.in_result { "yes" } else { "" }.to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure_1_pattern() {
        let rows = run(&LatticeParams::default());
        assert_eq!(rows.len(), 7);
        let outcome_of = |key: &str| {
            rows.iter()
                .find(|r| r.key == key)
                .map(|r| r.outcome.clone())
                .unwrap_or_default()
        };
        assert_eq!(outcome_of("a+b+c"), "missing");
        assert_eq!(outcome_of("a+b"), "missing");
        assert_eq!(outcome_of("a+c"), "missing");
        assert_eq!(outcome_of("b+c"), "found (truncated)");
        assert_eq!(outcome_of("a"), "found (complete)");
        assert_eq!(outcome_of("b"), "skipped");
        assert_eq!(outcome_of("c"), "skipped");
        // The result union comes from bc and a, exactly as in the paper.
        let in_result: Vec<&str> = rows
            .iter()
            .filter(|r| r.in_result)
            .map(|r| r.key.as_str())
            .collect();
        assert_eq!(in_result, vec!["b+c", "a"]);
    }

    #[test]
    fn without_pruning_the_singles_are_probed() {
        let rows = run(&LatticeParams {
            prune_below_truncated: false,
            ..Default::default()
        });
        let skipped = rows.iter().filter(|r| r.outcome == "skipped").count();
        assert_eq!(skipped, 0);
        let found = rows
            .iter()
            .filter(|r| r.outcome.starts_with("found"))
            .count();
        assert_eq!(found, 4); // bc, a, b, c
    }
}
