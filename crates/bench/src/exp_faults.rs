//! **P4 — Fault injection and fault-tolerant probes: recall@10 and bytes per
//! query under message loss and crashed peers, across retry policies.**
//!
//! The paper's setting is an overlay where message loss and abrupt peer
//! failure are the normal case. This experiment quantifies what the fault
//! plane (`core::fault`) costs to survive and what surviving it buys: the
//! identical seeded Zipf workload runs against a replicated network while a
//! seeded [`FaultPlane`] drops a fraction of probe messages and keeps a set
//! of peers crashed, once per retry policy:
//!
//! * **no-retry** ([`RetryPolicy::none`]) — every injected fault becomes a
//!   failed probe and a degraded answer;
//! * **retry** ([`RetryPolicy::retry_only`]) — bounded re-sends absorb
//!   message loss but keep re-serving from the same (possibly dead) peer;
//! * **retry+failover** ([`RetryPolicy::default`]) — retries plus re-serving
//!   from another live replica holder, the full robustness stack.
//!
//! Each arm reports mean **recall@10 against the fault-free answer**, bytes
//! per query (retry traffic included — an exhausted probe still pays for its
//! attempts), and the robustness counters (`retries`, `failed_probes`,
//! `hedged`, mean completeness). The headline cell — 10% loss plus two
//! crashed peers — is the acceptance bar: retry+failover must recover recall
//! to ≥ 0.95 of the fault-free arm at bounded byte overhead while no-retry
//! measurably degrades. `perf_guard` enforces exactly that on the committed
//! and fresh reports.
//!
//! Crash targets are chosen from the warmed replication state: the peers the
//! load-aware serve selection currently lands on for the hottest replicated
//! keys, always leaving each such key at least one live holder so failover
//! *can* succeed (an unreplicated key on a crashed peer stays unservable for
//! every arm — that residue is what keeps the failover arm below 1.0).
//!
//! Results go to `BENCH_faults.json` (`ALVIS_BENCH_OUT` overrides the path).

use alvisp2p_core::fault::{FaultPlane, RetryPolicy};
use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::strategy::Hdk;
use alvisp2p_dht::{HotKeyReplication, ReplicationPolicy, RingId};
use alvisp2p_textindex::{DocId, SyntheticCorpus};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::table::{fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// Parameters of the fault-tolerance experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultsParams {
    /// Peers in the overlay.
    pub peers: usize,
    /// Documents in the corpus.
    pub docs: usize,
    /// Query instances in the Zipf log (run once to warm, once to measure).
    pub queries: usize,
    /// Zipf exponent of query popularity.
    pub zipf_s: f64,
    /// Replication factor of the hot-key policy (the failover targets).
    pub factor: usize,
    /// Per-message loss probabilities swept (0.0 = crash-only scenarios).
    pub loss_rates: Vec<f64>,
    /// Crashed-peer counts swept (0 = loss-only scenarios).
    pub crash_counts: Vec<usize>,
    /// The loss rate of the acceptance-bar cell.
    pub headline_loss: f64,
    /// The crashed-peer count of the acceptance-bar cell.
    pub headline_crashes: usize,
    /// Master seed (drives corpus, log, network and fault decisions).
    pub seed: u64,
}

impl Default for FaultsParams {
    fn default() -> Self {
        FaultsParams {
            peers: 32,
            docs: 800,
            queries: 400,
            zipf_s: 1.1,
            factor: 3,
            loss_rates: vec![0.0, 0.05, 0.10, 0.20],
            crash_counts: vec![0, 2],
            headline_loss: 0.10,
            headline_crashes: 2,
            seed: DEFAULT_SEED,
        }
    }
}

impl FaultsParams {
    /// Fast smoke-test configuration (`ALVIS_QUICK=1` / `--quick`). Keeps the
    /// headline cell (10% loss + 2 crashes) so `perf_guard` can enforce the
    /// same invariants on a quick run.
    pub fn quick() -> Self {
        FaultsParams {
            peers: 16,
            docs: 250,
            queries: 160,
            loss_rates: vec![0.0, 0.10],
            crash_counts: vec![2],
            ..Default::default()
        }
    }

    fn policy(&self) -> Arc<dyn ReplicationPolicy> {
        Arc::new(HotKeyReplication::new(self.factor))
    }
}

/// The three retry policies compared.
fn arms() -> Vec<(&'static str, RetryPolicy)> {
    vec![
        ("no-retry", RetryPolicy::none()),
        ("retry", RetryPolicy::retry_only(2)),
        ("retry+failover", RetryPolicy::default()),
    ]
}

/// One measured (arm × scenario) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultsRow {
    /// Retry-policy label (`no-retry`, `retry`, `retry+failover`).
    pub arm: String,
    /// Injected per-message loss probability.
    pub loss: f64,
    /// Peers crashed for the whole measurement phase.
    pub crashes: usize,
    /// Mean recall@10 against the fault-free answers.
    pub recall_at_10: f64,
    /// Bytes per query, retry and hedge traffic included.
    pub bytes_per_query: f64,
    /// Aggregated robustness counters over the measurement queries.
    pub robustness: Robustness,
}

/// The `BENCH_faults.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultsReport {
    /// Experiment identifier.
    pub bench: String,
    /// Whether the quick configuration ran.
    pub quick: bool,
    /// Parameters used.
    pub params: FaultsParams,
    /// Bytes per query of the fault-free reference run.
    pub fault_free_bytes_per_query: f64,
    /// Measured cells, one per (scenario × arm).
    pub rows: Vec<FaultsRow>,
    /// recall@10 of the no-retry arm at the headline cell.
    pub headline_no_retry_recall: f64,
    /// recall@10 of the retry arm at the headline cell.
    pub headline_retry_recall: f64,
    /// recall@10 of the retry+failover arm at the headline cell.
    pub headline_failover_recall: f64,
    /// retry+failover bytes/query at the headline cell over the fault-free
    /// bytes/query (the cost of surviving).
    pub headline_byte_overhead: f64,
}

fn network(corpus: &SyntheticCorpus, policy: RetryPolicy, params: &FaultsParams) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(params.peers)
        .strategy(Hdk::new(workloads::default_hdk()))
        .replication(params.policy())
        .retry_policy(policy)
        .seed(params.seed)
        .corpus(corpus)
        .build_indexed()
        .expect("experiment network configuration is valid")
}

/// Runs the full log once against the warm network, heating the replication
/// tracker exactly the same way in every arm (the plane is still `NoFaults`).
fn warm(net: &mut AlvisNetwork, queries: &[String], params: &FaultsParams) {
    for (i, text) in queries.iter().enumerate() {
        let request = QueryRequest::new(text.clone())
            .from_peer(i % params.peers)
            .top_k(10);
        net.execute(&request).expect("warm-up query succeeds");
    }
}

/// Picks `count` crash targets from the warmed replication state: the peer
/// the load-aware serve selection currently lands on for each of the hottest
/// replicated keys, subject to every picked key keeping at least one live
/// replica holder (so failover has somewhere to go). Deterministic — the
/// warmed state is identical across arms.
pub(crate) fn crash_targets(net: &AlvisNetwork, count: usize) -> Vec<usize> {
    if count == 0 {
        return Vec::new();
    }
    let dht = net.global_index().dht();
    let mut keys = dht.replication().replicated_key_list();
    keys.sort_by(|a, b| {
        dht.replication()
            .key_load(*b)
            .total_cmp(&dht.replication().key_load(*a))
            .then(a.cmp(b))
    });
    let mut targets: Vec<usize> = Vec::new();
    let mut picked_keys: Vec<RingId> = Vec::new();
    for key in keys {
        if targets.len() >= count {
            break;
        }
        let Some(selection) = dht.least_loaded_holder(key) else {
            continue;
        };
        if targets.contains(&selection) {
            continue;
        }
        let mut candidate = targets.clone();
        candidate.push(selection);
        // Every hot key whose serve selection we kill must keep a live
        // replica holder outside the crash set.
        let survivable = picked_keys.iter().chain(std::iter::once(&key)).all(|k| {
            dht.replica_holders(*k)
                .iter()
                .any(|h| !candidate.contains(h))
        });
        if survivable {
            targets = candidate;
            picked_keys.push(key);
        }
    }
    targets
}

/// Runs the measurement phase of one arm under the given faults and returns
/// its row plus the per-query ranked answers.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    arm: &str,
    policy: RetryPolicy,
    corpus: &SyntheticCorpus,
    queries: &[String],
    loss: f64,
    crashes: usize,
    reference: Option<&[Vec<DocId>]>,
    params: &FaultsParams,
) -> (FaultsRow, Vec<Vec<DocId>>) {
    let mut net = network(corpus, policy, params);
    warm(&mut net, queries, params);
    let targets = crash_targets(&net, crashes);
    let mut plane = FaultPlane::seeded(params.seed).with_loss(loss);
    for peer in &targets {
        plane.crash(*peer);
    }
    *net.fault_plane_mut() = plane;
    // Queries never originate from a crashed peer — clients on dead machines
    // are not part of the workload.
    let origins: Vec<usize> = (0..params.peers).filter(|p| !targets.contains(p)).collect();

    let mut answers = Vec::with_capacity(queries.len());
    let mut robustness = Robustness::default();
    let mut bytes = 0u64;
    let mut recall_sum = 0.0f64;
    for (i, text) in queries.iter().enumerate() {
        let request = QueryRequest::new(text.clone())
            .from_peer(origins[i % origins.len()])
            .top_k(10);
        let response = net.execute(&request).expect("faulted query still succeeds");
        bytes += response.bytes;
        robustness.observe(&response);
        let got: Vec<DocId> = response.results.iter().map(|r| r.doc).collect();
        if let Some(reference) = reference {
            let want = &reference[i];
            recall_sum += if want.is_empty() {
                1.0
            } else {
                want.iter().filter(|d| got.contains(d)).count() as f64 / want.len() as f64
            };
        } else {
            recall_sum += 1.0;
        }
        answers.push(got);
    }
    let n = queries.len() as f64;
    let row = FaultsRow {
        arm: arm.to_string(),
        loss,
        crashes,
        recall_at_10: recall_sum / n,
        bytes_per_query: bytes as f64 / n,
        robustness,
    };
    (row, answers)
}

/// Runs the fault-free reference and the full (loss × crashes × arm) grid.
pub fn run(params: &FaultsParams) -> FaultsReport {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::zipf_query_log(&corpus, params.queries, params.zipf_s, params.seed);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    // The fault-free reference: same network, same warmup, no faults. Its
    // answers are the ground truth recall is measured against.
    let (reference_row, reference_answers) = run_cell(
        "fault-free",
        RetryPolicy::default(),
        &corpus,
        &queries,
        0.0,
        0,
        None,
        params,
    );

    let mut rows = Vec::new();
    for &loss in &params.loss_rates {
        for &crashes in &params.crash_counts {
            if loss == 0.0 && crashes == 0 {
                continue; // that cell *is* the reference
            }
            for (arm, policy) in arms() {
                let (row, _) = run_cell(
                    arm,
                    policy,
                    &corpus,
                    &queries,
                    loss,
                    crashes,
                    Some(&reference_answers),
                    params,
                );
                rows.push(row);
            }
        }
    }

    let headline = |arm: &str| {
        rows.iter()
            .find(|r| {
                r.arm == arm
                    && r.loss == params.headline_loss
                    && r.crashes == params.headline_crashes
            })
            .cloned()
    };
    let no_retry = headline("no-retry");
    let retry = headline("retry");
    let failover = headline("retry+failover");
    let headline_byte_overhead = failover
        .as_ref()
        .map(|r| r.bytes_per_query / reference_row.bytes_per_query.max(1e-9))
        .unwrap_or(0.0);
    FaultsReport {
        bench: "faults".to_string(),
        quick: false,
        params: params.clone(),
        fault_free_bytes_per_query: reference_row.bytes_per_query,
        rows,
        headline_no_retry_recall: no_retry.map(|r| r.recall_at_10).unwrap_or(0.0),
        headline_retry_recall: retry.map(|r| r.recall_at_10).unwrap_or(0.0),
        headline_failover_recall: failover.map(|r| r.recall_at_10).unwrap_or(0.0),
        headline_byte_overhead,
    }
}

/// Prints the result table.
pub fn print(report: &FaultsReport) {
    let mut table = Table::new(
        "P4: recall@10 and bytes/query under message loss + crashed peers, by retry policy",
        &[
            "loss",
            "crashes",
            "arm",
            "recall@10",
            "bytes/q",
            "x ref",
            "retries",
            "failed",
            "hedged",
            "compl",
        ],
    );
    for r in &report.rows {
        table.row(&[
            fmt_f(r.loss, 2),
            r.crashes.to_string(),
            r.arm.clone(),
            fmt_f(r.recall_at_10, 3),
            fmt_f(r.bytes_per_query, 0),
            fmt_f(
                r.bytes_per_query / report.fault_free_bytes_per_query.max(1e-9),
                2,
            ),
            r.robustness.retries.to_string(),
            r.robustness.failed_probes.to_string(),
            r.robustness.hedged.to_string(),
            fmt_f(r.robustness.mean_completeness(), 3),
        ]);
    }
    table.print();
    println!(
        "headline ({}% loss + {} crashed peers): recall@10 no-retry {:.3}, retry {:.3}, \
         retry+failover {:.3} at {:.2}x fault-free bytes/query",
        report.params.headline_loss * 100.0,
        report.params.headline_crashes,
        report.headline_no_retry_recall,
        report.headline_retry_recall,
        report.headline_failover_recall,
        report.headline_byte_overhead,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FaultsParams {
        FaultsParams {
            peers: 12,
            docs: 150,
            queries: 100,
            loss_rates: vec![0.10],
            crash_counts: vec![2],
            ..FaultsParams::default()
        }
    }

    #[test]
    fn faults_smoke_failover_beats_no_retry() {
        let report = run(&tiny());
        assert_eq!(report.rows.len(), 3, "one scenario x three arms");
        let no_retry = &report.rows[0];
        let failover = &report.rows[2];
        assert_eq!(no_retry.arm, "no-retry");
        assert_eq!(failover.arm, "retry+failover");
        assert!(
            no_retry.robustness.failed_probes > 0,
            "10% loss with no retries must fail probes"
        );
        assert_eq!(no_retry.robustness.retries, 0);
        assert!(failover.robustness.retries > 0, "faults were never retried");
        assert!(
            failover.recall_at_10 > no_retry.recall_at_10,
            "the full stack ({:.3}) must beat giving up ({:.3})",
            failover.recall_at_10,
            no_retry.recall_at_10
        );
        assert!(
            report.headline_byte_overhead >= 1.0 && report.headline_byte_overhead < 2.0,
            "retries cost bytes, but boundedly ({:.2}x)",
            report.headline_byte_overhead
        );
    }

    #[test]
    #[ignore = "full-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn failover_recovers_recall_at_full_scale() {
        // The acceptance bar: under 10% loss + 2 crashed peers, retry+failover
        // recovers recall@10 to >= 0.95 of the fault-free arm at bounded byte
        // overhead, while no-retry measurably degrades.
        let report = run(&FaultsParams::default());
        assert!(
            report.headline_failover_recall >= 0.95,
            "retry+failover recall {:.3} below the 0.95 acceptance bar",
            report.headline_failover_recall
        );
        assert!(
            report.headline_no_retry_recall <= report.headline_failover_recall - 0.02,
            "no-retry ({:.3}) did not measurably degrade vs failover ({:.3})",
            report.headline_no_retry_recall,
            report.headline_failover_recall
        );
        assert!(
            report.headline_byte_overhead <= 1.5,
            "byte overhead {:.2}x exceeds the 1.5x bound",
            report.headline_byte_overhead
        );
    }
}
