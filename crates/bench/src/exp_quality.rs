//! **E4 — Retrieval quality vs the centralized reference.**
//!
//! The paper claims (§1, §6) that retrieval quality "remains comparable to
//! state-of-the-art centralized search engines" despite truncated posting lists and
//! pruned lattice exploration. This experiment runs the same query workload against a
//! centralized BM25 engine (the reference), the single-term full-list baseline and the
//! two AlvisP2P strategies, and reports precision@10, recall@10 and overlap@20 with
//! the reference ranking, sweeping the truncation bound.

use alvisp2p_core::hdk::HdkConfig;
use alvisp2p_core::qdi::QdiConfig;
use alvisp2p_core::request::QueryRequest;
use alvisp2p_core::stats::QualityAccumulator;
use alvisp2p_core::strategy::{Hdk, Qdi, SingleTermFull, Strategy};
use serde::Serialize;
use std::sync::Arc;

use crate::table::{fmt_f, Robustness, Table};
use crate::workloads::{self, DEFAULT_SEED};

/// One row of the E4 output.
#[derive(Clone, Debug, Serialize)]
pub struct QualityRow {
    /// Strategy label.
    pub strategy: String,
    /// Posting-list truncation bound.
    pub truncation_k: usize,
    /// Mean precision@10 (reference top-10 treated as relevant).
    pub precision_at_10: f64,
    /// Mean recall@10.
    pub recall_at_10: f64,
    /// Mean overlap@20 with the reference ranking.
    pub overlap_at_20: f64,
    /// Number of evaluated queries.
    pub queries: usize,
    /// Aggregated robustness counters (all zeros under `NoFaults`).
    pub robustness: Robustness,
}

/// Parameters of the quality experiment.
#[derive(Clone, Debug, Serialize)]
pub struct QualityParams {
    /// Number of documents in the collection.
    pub docs: usize,
    /// Number of peers.
    pub peers: usize,
    /// Number of evaluated queries.
    pub queries: usize,
    /// Truncation bounds to sweep for HDK.
    pub truncation_sweep: Vec<usize>,
    /// Seed.
    pub seed: u64,
}

impl Default for QualityParams {
    fn default() -> Self {
        QualityParams {
            docs: 2_000,
            peers: 32,
            queries: 200,
            truncation_sweep: vec![10, 25, 50, 100, 200],
            seed: DEFAULT_SEED,
        }
    }
}

impl QualityParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        QualityParams {
            docs: 250,
            peers: 8,
            queries: 40,
            truncation_sweep: vec![10, 50],
            seed: DEFAULT_SEED,
        }
    }
}

/// Evaluates one strategy on the workload and returns its quality row.
pub fn evaluate(
    corpus: &alvisp2p_textindex::SyntheticCorpus,
    queries: &[String],
    strategy: Arc<dyn Strategy>,
    label: &str,
    truncation_k: usize,
    peers: usize,
    seed: u64,
) -> QualityRow {
    let mut net = workloads::indexed_network(corpus, strategy.clone(), peers, seed);
    // QDI warms up on the same stream before evaluation (its whole point is adapting
    // to the query distribution).
    if strategy.is_adaptive() {
        for (i, q) in queries.iter().enumerate() {
            let _ = net.execute(&QueryRequest::new(q.clone()).from_peer(i % peers).top_k(20));
        }
    }
    let mut acc10 = QualityAccumulator::new();
    let mut acc20 = QualityAccumulator::new();
    let mut robustness = Robustness::default();
    for (i, q) in queries.iter().enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(i % peers).top_k(20))
            .expect("query succeeds");
        robustness.observe(&outcome);
        let reference = net.reference_search(q, 20);
        acc10.add(&outcome.results, &reference, 10);
        acc20.add(&outcome.results, &reference, 20);
    }
    let s10 = acc10.summary();
    let s20 = acc20.summary();
    QualityRow {
        strategy: label.to_string(),
        truncation_k,
        precision_at_10: s10.mean_precision,
        recall_at_10: s10.mean_recall,
        overlap_at_20: s20.mean_overlap,
        queries: s10.queries,
        robustness,
    }
}

/// Runs the full E4 sweep.
pub fn run(params: &QualityParams) -> Vec<QualityRow> {
    let corpus = workloads::corpus(params.docs, params.seed);
    let log = workloads::query_log(&corpus, params.queries, false, params.seed);
    let queries: Vec<String> = log.queries.iter().map(|q| q.text.clone()).collect();

    let mut rows = Vec::new();
    // The untruncated single-term baseline (quality upper bound among P2P systems).
    rows.push(evaluate(
        &corpus,
        &queries,
        Arc::new(SingleTermFull),
        "single-term (full lists)",
        usize::MAX / 4,
        params.peers,
        params.seed,
    ));
    // HDK across the truncation sweep.
    for &k in &params.truncation_sweep {
        let config = HdkConfig {
            truncation_k: k,
            df_max: k,
            ..workloads::default_hdk()
        };
        rows.push(evaluate(
            &corpus,
            &queries,
            Arc::new(Hdk::new(config)),
            "hdk",
            k,
            params.peers,
            params.seed,
        ));
    }
    // QDI at the default truncation bound.
    let qdi = QdiConfig {
        truncation_k: *params.truncation_sweep.last().unwrap_or(&100),
        ..workloads::default_qdi()
    };
    let qdi_k = qdi.truncation_k;
    rows.push(evaluate(
        &corpus,
        &queries,
        Arc::new(Qdi::new(qdi)),
        "qdi (warmed)",
        qdi_k,
        params.peers,
        params.seed,
    ));
    rows
}

/// Prints the E4 table.
pub fn print(rows: &[QualityRow]) {
    let mut t = Table::new(
        "E4: retrieval quality vs centralized BM25 reference",
        &[
            "strategy",
            "truncation k",
            "P@10",
            "recall@10",
            "overlap@20",
            "queries",
        ],
    );
    for r in rows {
        t.row(&[
            r.strategy.clone(),
            if r.truncation_k > 1_000_000 {
                "unbounded".to_string()
            } else {
                r.truncation_k.to_string()
            },
            fmt_f(r.precision_at_10, 3),
            fmt_f(r.recall_at_10, 3),
            fmt_f(r.overlap_at_20, 3),
            r.queries.to_string(),
        ]);
    }
    t.print();
    let mut robustness = Robustness::default();
    for r in rows {
        robustness.absorb(&r.robustness);
    }
    robustness.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "quick()-scale experiment (minutes in debug); run with `cargo test -- --ignored` (nightly CI job)"]
    fn baseline_matches_reference_and_hdk_improves_with_larger_k() {
        let params = QualityParams {
            docs: 200,
            peers: 8,
            queries: 25,
            truncation_sweep: vec![5, 60],
            seed: 9,
        };
        let rows = run(&params);
        let baseline = rows
            .iter()
            .find(|r| r.strategy.starts_with("single-term"))
            .unwrap();
        // Untruncated single-term retrieval reproduces the reference ranking almost
        // exactly (same scoring model, complete lists).
        assert!(
            baseline.precision_at_10 > 0.95,
            "baseline P@10 {}",
            baseline.precision_at_10
        );
        let hdk_small = rows
            .iter()
            .find(|r| r.strategy == "hdk" && r.truncation_k == 5)
            .unwrap();
        let hdk_large = rows
            .iter()
            .find(|r| r.strategy == "hdk" && r.truncation_k == 60)
            .unwrap();
        assert!(
            hdk_large.precision_at_10 >= hdk_small.precision_at_10,
            "P@10 should not degrade with larger truncation ({} vs {})",
            hdk_large.precision_at_10,
            hdk_small.precision_at_10
        );
        // With a generous truncation bound the quality is close to the reference.
        assert!(
            hdk_large.precision_at_10 > 0.8,
            "hdk P@10 {}",
            hdk_large.precision_at_10
        );
        // QDI row exists and evaluated all queries.
        let qdi = rows.iter().find(|r| r.strategy.starts_with("qdi")).unwrap();
        assert_eq!(qdi.queries, 25);
    }
}
