//! E7 — Query-Driven Indexing adaptivity over a query stream. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_qdi, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_qdi::QdiParams::quick()
    } else {
        exp_qdi::QdiParams::default()
    };
    let rows = exp_qdi::run(&params);
    exp_qdi::print(&rows);
    table::maybe_print_json(&rows);
}
