//! E3 — HDK index size and storage scalability. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_storage, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_storage::StorageParams::quick()
    } else {
        exp_storage::StorageParams::default()
    };
    let rows = exp_storage::run(&params);
    exp_storage::print(&params, &rows);
    table::maybe_print_json(&rows);
}
