//! P2 — hot-key replication under Zipf traffic; writes `BENCH_skew.json`. See `exp_skew`.
use alvisp2p_bench::{exp_skew, quick_mode};

fn main() {
    let quick = quick_mode() || std::env::args().any(|a| a == "--quick");
    let params = if quick {
        exp_skew::SkewParams::quick()
    } else {
        exp_skew::SkewParams::default()
    };
    let mut report = exp_skew::run(&params);
    report.quick = quick;
    exp_skew::print(&report);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = std::env::var("ALVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_skew.json".to_string());
    std::fs::write(&path, json + "\n").expect("write BENCH_skew.json");
    println!("wrote {path}");
}
