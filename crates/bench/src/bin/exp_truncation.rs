//! E8 — posting-list truncation: bounded transfers, marginal quality loss. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_truncation, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_truncation::TruncationParams::quick()
    } else {
        exp_truncation::TruncationParams::default()
    };
    let rows = exp_truncation::run(&params);
    exp_truncation::print(&rows);
    table::maybe_print_json(&rows);
}
