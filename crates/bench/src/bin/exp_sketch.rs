//! P3 — per-key provenance sketches; writes `BENCH_sketch.json`. See `exp_sketch`.
use alvisp2p_bench::{exp_sketch, quick_mode};

fn main() {
    let quick = quick_mode() || std::env::args().any(|a| a == "--quick");
    let params = if quick {
        exp_sketch::SketchParams::quick()
    } else {
        exp_sketch::SketchParams::default()
    };
    let mut report = exp_sketch::run(&params);
    report.quick = quick;
    exp_sketch::print(&report);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = std::env::var("ALVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_sketch.json".to_string());
    std::fs::write(&path, json + "\n").expect("write BENCH_sketch.json");
    println!("wrote {path}");
}
