//! E6 — congestion control vs congestion collapse. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_congestion, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_congestion::CongestionParams::quick()
    } else {
        exp_congestion::CongestionParams::default()
    };
    let rows = exp_congestion::run(&params);
    exp_congestion::print(&rows);
    table::maybe_print_json(&rows);
}
