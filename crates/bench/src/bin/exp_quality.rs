//! E4 — retrieval quality vs the centralized reference. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_quality, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_quality::QualityParams::quick()
    } else {
        exp_quality::QualityParams::default()
    };
    let rows = exp_quality::run(&params);
    exp_quality::print(&rows);
    table::maybe_print_json(&rows);
}
