//! Runs every experiment (E1–E8) in sequence, printing each table.
//!
//! Set `ALVIS_QUICK=1` for a fast smoke-test pass over all experiments.
use alvisp2p_bench as bench;

fn main() {
    let quick = bench::quick_mode();
    println!("AlvisP2P experiment harness (quick mode: {quick})\n");

    let rows = bench::exp_lattice::run(&bench::exp_lattice::LatticeParams::default());
    bench::exp_lattice::print(&rows);
    bench::exp_lattice::print_planned(&bench::exp_lattice::LatticeParams::default(), 1_000);

    let p = if quick {
        bench::exp_bandwidth::BandwidthParams::quick()
    } else {
        Default::default()
    };
    bench::exp_bandwidth::print(&p, &bench::exp_bandwidth::run(&p));
    let p = if quick {
        bench::exp_bandwidth::PlannedParams::quick()
    } else {
        Default::default()
    };
    bench::exp_bandwidth::print_planned(&bench::exp_bandwidth::run_planned(&p));

    let p = if quick {
        bench::exp_storage::StorageParams::quick()
    } else {
        Default::default()
    };
    bench::exp_storage::print(&p, &bench::exp_storage::run(&p));

    let p = if quick {
        bench::exp_quality::QualityParams::quick()
    } else {
        Default::default()
    };
    bench::exp_quality::print(&bench::exp_quality::run(&p));

    let p = if quick {
        bench::exp_routing::RoutingParams::quick()
    } else {
        Default::default()
    };
    bench::exp_routing::print(&bench::exp_routing::run(&p));

    let p = if quick {
        bench::exp_congestion::CongestionParams::quick()
    } else {
        Default::default()
    };
    bench::exp_congestion::print(&bench::exp_congestion::run(&p));

    let p = if quick {
        bench::exp_qdi::QdiParams::quick()
    } else {
        Default::default()
    };
    bench::exp_qdi::print(&bench::exp_qdi::run(&p));

    let p = if quick {
        bench::exp_truncation::TruncationParams::quick()
    } else {
        Default::default()
    };
    bench::exp_truncation::print(&bench::exp_truncation::run(&p));
}
