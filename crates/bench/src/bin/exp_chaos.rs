//! P5 — control-plane chaos and recovery; writes `BENCH_chaos.json`. See `exp_chaos`.
use alvisp2p_bench::{exp_chaos, quick_mode};

fn main() {
    let quick = quick_mode() || std::env::args().any(|a| a == "--quick");
    let params = if quick {
        exp_chaos::ChaosParams::quick()
    } else {
        exp_chaos::ChaosParams::default()
    };
    let mut report = exp_chaos::run(&params);
    report.quick = quick;
    exp_chaos::print(&report);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = std::env::var("ALVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
    std::fs::write(&path, json + "\n").expect("write BENCH_chaos.json");
    println!("wrote {path}");
}
