//! P1 — key/posting hot-path microbenchmarks; writes `BENCH_perf.json`. See `exp_perf`.
use alvisp2p_bench::{exp_perf, quick_mode};

fn main() {
    let quick = quick_mode() || std::env::args().any(|a| a == "--quick");
    let params = if quick {
        exp_perf::PerfParams::quick()
    } else {
        exp_perf::PerfParams::default()
    };
    let rows = exp_perf::run(&params);
    exp_perf::print(&rows);
    let wire = exp_perf::run_wire(&params);
    exp_perf::print_wire(&wire);
    let report = exp_perf::report(&params, quick, rows, wire);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = std::env::var("ALVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_perf.json".to_string());
    std::fs::write(&path, json + "\n").expect("write BENCH_perf.json");
    println!("wrote {path}");
}
