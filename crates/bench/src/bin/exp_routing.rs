//! E5 — O(log n) routing under identifier skew. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_routing, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_routing::RoutingParams::quick()
    } else {
        exp_routing::RoutingParams::default()
    };
    let rows = exp_routing::run(&params);
    exp_routing::print(&rows);
    table::maybe_print_json(&rows);
}
