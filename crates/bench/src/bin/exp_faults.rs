//! P4 — fault injection and fault-tolerant probes; writes `BENCH_faults.json`. See `exp_faults`.
use alvisp2p_bench::{exp_faults, quick_mode};

fn main() {
    let quick = quick_mode() || std::env::args().any(|a| a == "--quick");
    let params = if quick {
        exp_faults::FaultsParams::quick()
    } else {
        exp_faults::FaultsParams::default()
    };
    let mut report = exp_faults::run(&params);
    report.quick = quick;
    exp_faults::print(&report);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path = std::env::var("ALVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_faults.json".to_string());
    std::fs::write(&path, json + "\n").expect("write BENCH_faults.json");
    println!("wrote {path}");
}
