//! E1 — Figure 1: query-lattice processing. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_lattice, table};

fn main() {
    let params = exp_lattice::LatticeParams::default();
    let rows = exp_lattice::run(&params);
    exp_lattice::print(&rows);
    // Also show the ablation without pruning below truncated keys.
    let rows_no_prune = exp_lattice::run(&exp_lattice::LatticeParams {
        prune_below_truncated: false,
        ..exp_lattice::LatticeParams::default()
    });
    println!("(ablation: same query without pruning below truncated keys)");
    exp_lattice::print(&rows_no_prune);
    table::maybe_print_json(&rows);

    // E1b: the same scenario through the plan → execute pipeline under a byte
    // budget, comparing the cost-based planner against the fixed-order cutoff.
    let summaries = exp_lattice::print_planned(&params, 1_000);
    table::maybe_print_json(&summaries);
}
