//! E2 — retrieval bandwidth: single-term baseline vs HDK vs QDI, plus the E2c
//! planned/threshold sweep; writes `BENCH_bandwidth.json`. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_bandwidth, quick_mode, table};

fn main() {
    let quick = quick_mode() || std::env::args().any(|a| a == "--quick");
    let params = if quick {
        exp_bandwidth::BandwidthParams::quick()
    } else {
        exp_bandwidth::BandwidthParams::default()
    };
    let rows = exp_bandwidth::run(&params);
    exp_bandwidth::print(&params, &rows);
    table::maybe_print_json(&rows);

    // E2c: the planned-vs-best-effort arm — same workload under per-query byte
    // budgets, planned with the cost-based planner vs the PR 1 cutoff.
    let planned_params = if quick {
        exp_bandwidth::PlannedParams::quick()
    } else {
        exp_bandwidth::PlannedParams::default()
    };
    let planned_rows = exp_bandwidth::run_planned(&planned_params);
    exp_bandwidth::print_planned(&planned_rows);
    table::maybe_print_json(&planned_rows);

    // E2c over a long-posting-list corpus (capped vocabulary): the regime
    // where the threshold arms' floor-based elision has the most bytes to
    // save.
    let long_rows = exp_bandwidth::run_planned(&planned_params.long_lists());
    println!("(long-list corpus: vocabulary capped at 500 terms)");
    exp_bandwidth::print_planned(&long_rows);
    table::maybe_print_json(&long_rows);

    let report = exp_bandwidth::BandwidthReport {
        quick,
        planned: planned_rows,
        long_lists: long_rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let path =
        std::env::var("ALVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_bandwidth.json".to_string());
    std::fs::write(&path, json + "\n").expect("write BENCH_bandwidth.json");
    println!("wrote {path}");
}
