//! E2 — retrieval bandwidth: single-term baseline vs HDK vs QDI. See `EXPERIMENTS.md`.
use alvisp2p_bench::{exp_bandwidth, quick_mode, table};

fn main() {
    let params = if quick_mode() {
        exp_bandwidth::BandwidthParams::quick()
    } else {
        exp_bandwidth::BandwidthParams::default()
    };
    let rows = exp_bandwidth::run(&params);
    exp_bandwidth::print(&params, &rows);
    table::maybe_print_json(&rows);
}
