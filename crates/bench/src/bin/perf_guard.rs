//! CI regression guard over `BENCH_perf.json` (and optionally
//! `BENCH_skew.json`, `BENCH_sketch.json`, `BENCH_faults.json`,
//! `BENCH_chaos.json` and `BENCH_bandwidth.json`).
//!
//! Usage: `perf_guard <committed.json> <fresh.json> [<committed_skew.json>
//! <fresh_skew.json> [<committed_sketch.json> <fresh_sketch.json>
//! [<committed_faults.json> <fresh_faults.json>
//! [<committed_chaos.json> <fresh_chaos.json>
//! [<committed_bandwidth.json> <fresh_bandwidth.json>]]]]]`
//!
//! Compares a fresh `exp_perf --quick` run against the committed perf
//! trajectory and fails (exit code 1) when any comparable arm regressed by
//! more than the tolerance (default 30%, override with
//! `ALVIS_PERF_TOLERANCE=0.5` style fractions).
//!
//! When the two skew-report paths are given, the guard additionally enforces
//! the replication subsystem's scale-independent guarantees on both reports
//! (they hold at `--quick` and full scale alike, and the seeded runs are
//! deterministic): every arm's top-k answers equal the unreplicated
//! baseline's, the churn arm recovers the hot key and re-converges the
//! replica placement, and the p99 per-peer load reduction stays ≥ 2x.
//!
//! When the two sketch-report paths are also given, the guard enforces the
//! sketch subsystem's scale-independent guarantees on both reports: the
//! cost-based arm's answers equal the sketch-free baseline's, the baseline
//! never prunes, the cost-based arm prunes at least one probe, every
//! maintained sketch's upkeep stays within its modeled savings, and the net
//! bytes-per-query reduction (retrieval savings minus amortized upkeep)
//! stays ≥ 1%.
//!
//! When the two faults-report paths are also given, the guard enforces the
//! fault-tolerance acceptance bar on both reports: at the headline cell (10%
//! message loss + 2 crashed peers) the retry+failover arm keeps recall@10 at
//! ≥ 0.95 of the fault-free answers at ≤ 1.5x its bytes/query, the no-retry
//! arm is measurably worse, and the injected faults demonstrably fired
//! (retries observed, no-retry probes failed).
//!
//! When the two chaos-report paths are also given, the guard enforces the
//! control-plane recovery bar on both reports: the repair arm drains every
//! un-acked publication, restores replica consistency to 1.0 and keeps
//! recall@10 ≥ 0.95 of fault-free at ≤ 2x its bytes/query, while the
//! no-repair arm under the identical plane stays divergent (pending
//! publications, consistency < 1.0, a non-vacuous recall gap) and the frame
//! corruption demonstrably fired (corrupt frames counted).
//!
//! When the two bandwidth-report paths are also given, the guard enforces the
//! rank-safe threshold mode's bar on both reports: top-k answers (docs, ranks
//! and score bits) identical to the `greedy-cost`/`off` reference at every
//! budget, bytes/query never above the off arm's, and — on the long-lists
//! corpus — bytes/query at or below `Conservative`'s with the floors
//! demonstrably firing (whole blocks skipped, strictly fewer bytes than
//! Conservative at some budget).
//!
//! Two measures keep the guard meaningful across machines and
//! configurations:
//!
//! * **Calibration** — absolute ns/op depends on the machine, so every row is
//!   normalized by the run's own `key_construct/legacy` row: that arm is a
//!   frozen in-bench replica of the seed's string key whose code never
//!   changes, making its per-op cost a pure machine-speed probe. The guarded
//!   quantity is the *ratio* of a row to the calibration row, compared across
//!   the two reports.
//! * **Scale-independent rows only** — `--quick` shrinks the corpus/network,
//!   so workload-dependent benches (`publish_e2e`, `planned_query`) measure
//!   different work per op and are reported but not guarded. The guarded
//!   benches operate on fixed-shape inputs (2–3 term keys, the 100-entry
//!   codec list), so their per-op work is identical at any scale.

use alvisp2p_bench::exp_bandwidth::{BandwidthReport, PlannedBandwidthRow};
use alvisp2p_bench::exp_chaos::ChaosReport;
use alvisp2p_bench::exp_faults::FaultsReport;
use alvisp2p_bench::exp_perf::PerfReport;
use alvisp2p_bench::exp_sketch::SketchReport;
use alvisp2p_bench::exp_skew::SkewReport;
use std::process::ExitCode;

/// The sketch arm must keep at least this fractional net bytes-per-query
/// reduction (retrieval savings minus amortized sketch upkeep).
const SKETCH_NET_REDUCTION_FLOOR: f64 = 0.01;

/// The retry+failover arm must keep at least this recall@10 against the
/// fault-free answers at the headline fault cell.
const FAULTS_RECALL_FLOOR: f64 = 0.95;

/// The no-retry arm must trail retry+failover by at least this much recall at
/// the headline cell ("measurably degrades").
const FAULTS_DEGRADATION_GAP: f64 = 0.02;

/// The retry+failover arm's headline bytes/query over the fault-free run's.
const FAULTS_BYTE_OVERHEAD_CEILING: f64 = 1.5;

/// The chaos repair arm must keep at least this recall@10 against the
/// fault-free answers under the combined control-plane fault mix.
const CHAOS_RECALL_FLOOR: f64 = 0.95;

/// The no-repair arm must trail the repair arm by at least this much recall
/// ("the degradation the repair machinery prevents is non-vacuous").
const CHAOS_DEGRADATION_GAP: f64 = 0.02;

/// The repair arm's bytes/query over the fault-free run's (repair traffic is
/// Overlay, but retries on lost/corrupt probes inflate Retrieval too).
const CHAOS_BYTE_OVERHEAD_CEILING: f64 = 2.0;

/// Benches whose per-op work does not depend on the `--quick` scaling.
const GUARDED: &[&str] = &[
    "key_construct",
    "key_construct_from_str",
    "ring_id",
    "lattice_enum",
    "publish_keyops",
    "codec_encode",
    "codec_decode",
    "codec_decode_floored",
];

/// The machine-speed probe used for normalization.
const CALIBRATION: (&str, &str) = ("key_construct", "legacy");

/// Rows cheaper than this are dominated by timer/loop granularity (e.g. the
/// cached-hash `ring_id` at ~0.4 ns/op): they are printed but not guarded,
/// since a fraction of a nanosecond of jitter reads as a huge relative change.
const NOISE_FLOOR_NS: f64 = 5.0;

fn load(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_guard: cannot parse {path}: {e:?}"))
}

fn ns_of(report: &PerfReport, bench: &str, arm: &str) -> Option<f64> {
    report
        .rows
        .iter()
        .find(|r| r.bench == bench && r.arm == arm)
        .map(|r| r.ns_per_op)
}

fn load_skew(path: &str) -> SkewReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_guard: cannot parse {path}: {e:?}"))
}

/// The skew-report invariants are scale-independent, so the same bar applies
/// to the committed full run and a fresh `--quick` run.
fn check_skew(label: &str, report: &SkewReport, failures: &mut Vec<String>) {
    println!(
        "skew ({label}): p99 reduction {:.2}x, topk {}, churn survived {}, re-converged {}",
        report.p99_reduction,
        if report.rows.iter().all(|r| r.identical_topk) {
            "identical"
        } else {
            "DIVERGED"
        },
        report.churn.hot_key_survived,
        report.churn.reconverged,
    );
    for row in &report.rows {
        if !row.identical_topk {
            failures.push(format!(
                "skew/{label}: arm {} changed query answers",
                row.arm
            ));
        }
    }
    if report.p99_reduction < 2.0 {
        failures.push(format!(
            "skew/{label}: p99 load reduction {:.2}x below the 2x bar",
            report.p99_reduction
        ));
    }
    if !report.churn.hot_key_survived {
        failures.push(format!(
            "skew/{label}: hot key did not survive its primary's failure"
        ));
    }
    if !report.churn.reconverged {
        failures.push(format!(
            "skew/{label}: replica placement did not re-converge after joins"
        ));
    }
}

fn load_sketch(path: &str) -> SketchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_guard: cannot parse {path}: {e:?}"))
}

/// The sketch-report invariants are scale-independent, so the same bar
/// applies to the committed full run and a fresh `--quick` run.
fn check_sketch(label: &str, report: &SketchReport, failures: &mut Vec<String>) {
    println!(
        "sketch ({label}): net reduction {:.1}%, pruned {}, sketched {}/{}, topk {}, upkeep {}",
        report.net_reduction * 100.0,
        report.rows.iter().map(|r| r.pruned_probes).sum::<u64>(),
        report.rows.last().map_or(0, |r| r.sketched_keys),
        report.rows.last().map_or(0, |r| r.considered_keys),
        if report.rows.iter().all(|r| r.identical_topk) {
            "identical"
        } else {
            "DIVERGED"
        },
        if report.rows.iter().all(|r| r.upkeep_accounted) {
            "accounted"
        } else {
            "UNACCOUNTED"
        },
    );
    let Some((baseline, sketched)) = report
        .rows
        .iter()
        .find(|r| r.arm == "no-sketches")
        .zip(report.rows.iter().find(|r| r.arm == "cost-based"))
    else {
        failures.push(format!("sketch/{label}: missing an expected arm"));
        return;
    };
    if baseline.pruned_probes != 0 {
        failures.push(format!(
            "sketch/{label}: the no-sketches baseline pruned {} probes",
            baseline.pruned_probes
        ));
    }
    if sketched.pruned_probes == 0 {
        failures.push(format!(
            "sketch/{label}: the cost-based arm never pruned a probe"
        ));
    }
    if !sketched.identical_topk {
        failures.push(format!("sketch/{label}: sketch pruning changed answers"));
    }
    if !sketched.upkeep_accounted {
        failures.push(format!(
            "sketch/{label}: a maintained sketch's upkeep exceeds its modeled savings"
        ));
    }
    if report.net_reduction < SKETCH_NET_REDUCTION_FLOOR {
        failures.push(format!(
            "sketch/{label}: net bytes/query reduction {:.2}% below the {:.0}% floor",
            report.net_reduction * 100.0,
            SKETCH_NET_REDUCTION_FLOOR * 100.0
        ));
    }
}

fn load_faults(path: &str) -> FaultsReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_guard: cannot parse {path}: {e:?}"))
}

/// The faults-report invariants are scale-independent (the quick
/// configuration keeps the same headline cell), so the same bar applies to
/// the committed full run and a fresh `--quick` run.
fn check_faults(label: &str, report: &FaultsReport, failures: &mut Vec<String>) {
    println!(
        "faults ({label}): headline recall@10 no-retry {:.3} / retry {:.3} / failover {:.3} \
         at {:.2}x fault-free bytes/query",
        report.headline_no_retry_recall,
        report.headline_retry_recall,
        report.headline_failover_recall,
        report.headline_byte_overhead,
    );
    let headline = |arm: &str| {
        report.rows.iter().find(|r| {
            r.arm == arm
                && r.loss == report.params.headline_loss
                && r.crashes == report.params.headline_crashes
        })
    };
    let Some((no_retry, failover)) = headline("no-retry").zip(headline("retry+failover")) else {
        failures.push(format!("faults/{label}: missing a headline arm"));
        return;
    };
    if report.headline_failover_recall < FAULTS_RECALL_FLOOR {
        failures.push(format!(
            "faults/{label}: retry+failover recall {:.3} below the {FAULTS_RECALL_FLOOR} floor",
            report.headline_failover_recall
        ));
    }
    if report.headline_no_retry_recall > report.headline_failover_recall - FAULTS_DEGRADATION_GAP {
        failures.push(format!(
            "faults/{label}: no-retry recall {:.3} not measurably below failover {:.3}",
            report.headline_no_retry_recall, report.headline_failover_recall
        ));
    }
    if report.headline_byte_overhead > FAULTS_BYTE_OVERHEAD_CEILING {
        failures.push(format!(
            "faults/{label}: byte overhead {:.2}x exceeds the {FAULTS_BYTE_OVERHEAD_CEILING}x \
             ceiling",
            report.headline_byte_overhead
        ));
    }
    if no_retry.robustness.failed_probes == 0 {
        failures.push(format!(
            "faults/{label}: no probe ever failed under no-retry — the injected faults \
             never fired and every recall bar is vacuous"
        ));
    }
    if failover.robustness.retries == 0 {
        failures.push(format!(
            "faults/{label}: the retry+failover arm never retried — the injected faults \
             never fired and every recall bar is vacuous"
        ));
    }
}

fn load_chaos(path: &str) -> ChaosReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_guard: cannot parse {path}: {e:?}"))
}

/// The chaos-report invariants are scale-independent (the quick configuration
/// keeps the full fault mix), so the same bar applies to the committed full
/// run and a fresh `--quick` run.
fn check_chaos(label: &str, report: &ChaosReport, failures: &mut Vec<String>) {
    println!(
        "chaos ({label}): repair recall {:.3} / consistency {:.3} / {} pending vs \
         no-repair recall {:.3} / consistency {:.3} / {} pending at {:.2}x bytes/query",
        report.repair_recall,
        report.repair_consistency,
        report.repair_pending,
        report.no_repair_recall,
        report.no_repair_consistency,
        report.no_repair_pending,
        report.repair_byte_overhead,
    );
    if report.repair_recall < CHAOS_RECALL_FLOOR {
        failures.push(format!(
            "chaos/{label}: repair recall {:.3} below the {CHAOS_RECALL_FLOOR} floor",
            report.repair_recall
        ));
    }
    if report.no_repair_recall > report.repair_recall - CHAOS_DEGRADATION_GAP {
        failures.push(format!(
            "chaos/{label}: no-repair recall {:.3} not measurably below repair {:.3}",
            report.no_repair_recall, report.repair_recall
        ));
    }
    if report.repair_consistency < 0.999 {
        failures.push(format!(
            "chaos/{label}: repair left replica consistency at {:.3}",
            report.repair_consistency
        ));
    }
    if report.no_repair_consistency >= 1.0 {
        failures.push(format!(
            "chaos/{label}: the no-repair arm stayed fully consistent — the injected \
             divergence never fired and the consistency bar is vacuous"
        ));
    }
    if report.repair_pending != 0 {
        failures.push(format!(
            "chaos/{label}: {} publications still un-acked after repair",
            report.repair_pending
        ));
    }
    if report.no_repair_pending == 0 {
        failures.push(format!(
            "chaos/{label}: the no-repair arm has no pending publications — the injected \
             publish loss never fired and the recall bar is vacuous"
        ));
    }
    if report.repair_byte_overhead > CHAOS_BYTE_OVERHEAD_CEILING {
        failures.push(format!(
            "chaos/{label}: byte overhead {:.2}x exceeds the {CHAOS_BYTE_OVERHEAD_CEILING}x \
             ceiling",
            report.repair_byte_overhead
        ));
    }
    if report
        .rows
        .iter()
        .map(|r| r.robustness.corrupt_probes)
        .sum::<u64>()
        == 0
    {
        failures.push(format!(
            "chaos/{label}: no corrupt frame was ever counted — the injected bit flips \
             never fired"
        ));
    }
}

fn load_bandwidth(path: &str) -> BandwidthReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_guard: cannot parse {path}: {e:?}"))
}

/// The bandwidth-report invariants are scale-independent, so the same bar
/// applies to the committed full run and a fresh `--quick` run: the rank-safe
/// arm's answers are bit-identical to `greedy-cost`/`off` at every budget and
/// its bytes/query never exceed the off arm's (elision only shrinks
/// responses) nor, on the long-lists corpus, the Conservative arm's — where
/// the rank-safe floors must also demonstrably fire (whole blocks skipped,
/// strictly fewer bytes than Conservative on some budget).
fn check_bandwidth(label: &str, report: &BandwidthReport, failures: &mut Vec<String>) {
    let arm = |rows: &'_ [PlannedBandwidthRow], budget: u64, threshold: &str| {
        rows.iter()
            .find(|r| r.budget == budget && r.planner == "greedy-cost" && r.threshold == threshold)
            .cloned()
    };
    for (sweep, rows) in [
        ("planned", &report.planned),
        ("long-lists", &report.long_lists),
    ] {
        let budgets: Vec<u64> = {
            let mut b: Vec<u64> = rows.iter().map(|r| r.budget).collect();
            b.sort_unstable();
            b.dedup();
            b
        };
        let mut skipped = 0u64;
        let mut beats_conservative = false;
        for &budget in &budgets {
            let Some(((off, safe), conservative)) = arm(rows, budget, "off")
                .zip(arm(rows, budget, "rank-safe"))
                .zip(arm(rows, budget, "conservative"))
            else {
                failures.push(format!(
                    "bandwidth/{label}: {sweep} budget {budget} is missing a threshold arm"
                ));
                continue;
            };
            println!(
                "bandwidth ({label}): {sweep} budget {budget}: rank-safe {:.0} B/query \
                 ({} blocks, {} B elided) vs off {:.0} / conservative {:.0}, topk {}",
                safe.mean_bytes,
                safe.skipped_blocks,
                safe.elided_bytes,
                off.mean_bytes,
                conservative.mean_bytes,
                if safe.identical_topk {
                    "identical"
                } else {
                    "DIVERGED"
                },
            );
            if !safe.identical_topk {
                failures.push(format!(
                    "bandwidth/{label}: {sweep} budget {budget}: rank-safe answers diverged \
                     from off"
                ));
            }
            if safe.mean_bytes > off.mean_bytes + 1e-6 {
                failures.push(format!(
                    "bandwidth/{label}: {sweep} budget {budget}: rank-safe {:.1} B/query \
                     exceeds off {:.1}",
                    safe.mean_bytes, off.mean_bytes
                ));
            }
            if sweep == "long-lists" {
                if safe.mean_bytes > conservative.mean_bytes + 1e-6 {
                    failures.push(format!(
                        "bandwidth/{label}: long-lists budget {budget}: rank-safe {:.1} B/query \
                         exceeds conservative {:.1}",
                        safe.mean_bytes, conservative.mean_bytes
                    ));
                }
                skipped += safe.skipped_blocks;
                if safe.mean_bytes < conservative.mean_bytes - 1e-6 {
                    beats_conservative = true;
                }
            }
        }
        if sweep == "long-lists" {
            if skipped == 0 {
                failures.push(format!(
                    "bandwidth/{label}: rank-safe never skipped a block on the long-lists \
                     corpus — the floors never fired and every byte bar is vacuous"
                ));
            }
            if !beats_conservative {
                failures.push(format!(
                    "bandwidth/{label}: rank-safe never ships strictly fewer bytes/query than \
                     conservative on the long-lists corpus"
                ));
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 12 || !args.len().is_multiple_of(2) {
        eprintln!(
            "usage: perf_guard <committed.json> <fresh.json> \
             [<committed_skew.json> <fresh_skew.json> \
             [<committed_sketch.json> <fresh_sketch.json> \
             [<committed_faults.json> <fresh_faults.json> \
             [<committed_chaos.json> <fresh_chaos.json> \
             [<committed_bandwidth.json> <fresh_bandwidth.json>]]]]]"
        );
        return ExitCode::from(2);
    }
    // Positional (committed, fresh) pairs, outermost first.
    let pair = |i: usize| -> Option<(String, String)> {
        args.get(2 * i)
            .zip(args.get(2 * i + 1))
            .map(|(c, f)| (c.clone(), f.clone()))
    };
    let (committed_path, fresh_path) = (&args[0], &args[1]);
    let skew_paths = pair(1);
    let sketch_paths = pair(2);
    let faults_paths = pair(3);
    let chaos_paths = pair(4);
    let bandwidth_paths = pair(5);
    let tolerance: f64 = std::env::var("ALVIS_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let committed = load(committed_path);
    let fresh = load(fresh_path);

    let cal_committed = ns_of(&committed, CALIBRATION.0, CALIBRATION.1)
        .expect("committed report lacks the calibration row");
    let cal_fresh = ns_of(&fresh, CALIBRATION.0, CALIBRATION.1)
        .expect("fresh report lacks the calibration row");
    println!(
        "calibration ({}/{}): committed {cal_committed:.1} ns/op, fresh {cal_fresh:.1} ns/op",
        CALIBRATION.0, CALIBRATION.1
    );

    let mut regressions = Vec::new();
    let mut checked = 0usize;
    for row in &committed.rows {
        if !GUARDED.contains(&row.bench.as_str()) {
            continue;
        }
        if (row.bench.as_str(), row.arm.as_str()) == CALIBRATION {
            continue;
        }
        let Some(fresh_ns) = ns_of(&fresh, &row.bench, &row.arm) else {
            regressions.push(format!("{}/{}: missing from fresh run", row.bench, row.arm));
            continue;
        };
        if row.ns_per_op < NOISE_FLOOR_NS || fresh_ns < NOISE_FLOOR_NS {
            println!(
                "{:<24} {:<14} committed {:>9.1} ns  fresh {:>9.1} ns  below noise floor, not guarded",
                row.bench, row.arm, row.ns_per_op, fresh_ns
            );
            continue;
        }
        let committed_rel = row.ns_per_op / cal_committed;
        let fresh_rel = fresh_ns / cal_fresh;
        let change = fresh_rel / committed_rel - 1.0;
        checked += 1;
        let verdict = if change > tolerance {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<24} {:<14} committed {:>9.1} ns  fresh {:>9.1} ns  normalized {:>+6.1}%  {verdict}",
            row.bench,
            row.arm,
            row.ns_per_op,
            fresh_ns,
            change * 100.0
        );
        if change > tolerance {
            regressions.push(format!(
                "{}/{}: {:.1}% over the committed trajectory (tolerance {:.0}%)",
                row.bench,
                row.arm,
                change * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if let Some((committed_skew, fresh_skew)) = skew_paths {
        check_skew("committed", &load_skew(&committed_skew), &mut regressions);
        check_skew("fresh", &load_skew(&fresh_skew), &mut regressions);
    }
    if let Some((committed_sketch, fresh_sketch)) = sketch_paths {
        check_sketch(
            "committed",
            &load_sketch(&committed_sketch),
            &mut regressions,
        );
        check_sketch("fresh", &load_sketch(&fresh_sketch), &mut regressions);
    }
    if let Some((committed_faults, fresh_faults)) = faults_paths {
        check_faults(
            "committed",
            &load_faults(&committed_faults),
            &mut regressions,
        );
        check_faults("fresh", &load_faults(&fresh_faults), &mut regressions);
    }
    if let Some((committed_chaos, fresh_chaos)) = chaos_paths {
        check_chaos("committed", &load_chaos(&committed_chaos), &mut regressions);
        check_chaos("fresh", &load_chaos(&fresh_chaos), &mut regressions);
    }
    if let Some((committed_bw, fresh_bw)) = bandwidth_paths {
        check_bandwidth(
            "committed",
            &load_bandwidth(&committed_bw),
            &mut regressions,
        );
        check_bandwidth("fresh", &load_bandwidth(&fresh_bw), &mut regressions);
    }
    println!(
        "perf_guard: {checked} arms checked, {} regressions",
        regressions.len()
    );
    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("perf regression: {r}");
        }
        ExitCode::FAILURE
    }
}
