//! **E5 — O(log n) routing under arbitrary identifier skew.**
//!
//! The paper's layer-2 claim (§3): peers build routing tables of size O(log n), a
//! lookup takes an expected O(log n) hops, and — thanks to the "hop space"
//! construction — this holds for *arbitrary skews* in the peer identifier
//! distribution. The experiment sweeps the network size and the skew of the peer
//! placement, and compares the hop-space routing tables against identifier-space
//! (Chord-style, equal table size) tables. Expected shape: hop-space hop counts grow
//! with log₂(n) and are unaffected by skew; the identifier-space baseline degrades as
//! the skew grows.

use alvisp2p_core::stats::{mean, percentile};
use alvisp2p_dht::{Dht, DhtConfig, RingId, RoutingStrategy};
use alvisp2p_netsim::{PowerLaw, SimRng};
use serde::Serialize;

use crate::table::{fmt_f, Table};
use crate::workloads::DEFAULT_SEED;

/// One row of the E5 output.
#[derive(Clone, Debug, Serialize)]
pub struct RoutingRow {
    /// Number of peers.
    pub peers: usize,
    /// Skew parameter of the peer placement (1 = uniform).
    pub skew: f64,
    /// Routing strategy label.
    pub strategy: String,
    /// Mean lookup hops.
    pub mean_hops: f64,
    /// 99th-percentile lookup hops.
    pub p99_hops: f64,
    /// Maximum observed hops.
    pub max_hops: usize,
    /// Mean routing-table size (distinct entries per peer).
    pub table_size: f64,
    /// log2 of the network size, for reference.
    pub log2_n: f64,
}

/// Parameters of the routing experiment.
#[derive(Clone, Debug, Serialize)]
pub struct RoutingParams {
    /// Network sizes to sweep.
    pub peer_sweep: Vec<usize>,
    /// Skew parameters to sweep (1 = uniform placement; larger = peers concentrated
    /// in a small region of the identifier space, as happens with load-adaptive
    /// peer placement under skewed key distributions).
    pub skew_sweep: Vec<f64>,
    /// Lookups per configuration.
    pub lookups: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for RoutingParams {
    fn default() -> Self {
        RoutingParams {
            peer_sweep: vec![16, 64, 256, 1_024, 4_096],
            skew_sweep: vec![1.0, 16.0, 64.0, 256.0],
            lookups: 2_000,
            seed: DEFAULT_SEED,
        }
    }
}

impl RoutingParams {
    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        RoutingParams {
            peer_sweep: vec![16, 128],
            skew_sweep: vec![1.0, 64.0],
            lookups: 300,
            seed: DEFAULT_SEED,
        }
    }
}

/// Measures one `(peers, skew, strategy)` configuration.
///
/// Peers are placed at the sampled quantiles of a bounded power law (skew = 1 is
/// uniform); lookup keys are drawn from the *same* distribution, modelling the
/// load-balanced-placement scenario in which peers position themselves where the keys
/// are dense.
pub fn measure(
    peers: usize,
    skew: f64,
    strategy: RoutingStrategy,
    lookups: usize,
    seed: u64,
) -> RoutingRow {
    let mut rng = SimRng::new(seed).derive(peers as u64 ^ (skew.to_bits()));
    let placement = PowerLaw::new(skew.max(1.0));
    let config = DhtConfig {
        strategy,
        ..Default::default()
    };
    let mut dht: Dht<Vec<u8>> = Dht::new(config, seed);
    let mut added = 0usize;
    while added < peers {
        let id = RingId::from_fraction(placement.sample(&mut rng));
        if dht.add_peer_with_id(id).is_some() {
            added += 1;
        }
    }
    dht.rebuild_routing_tables();

    let mut hops: Vec<f64> = Vec::with_capacity(lookups);
    let mut max_hops = 0usize;
    for i in 0..lookups {
        let key = RingId::from_fraction(placement.sample(&mut rng));
        let from = (i * 2654435761) % peers;
        let h = dht.probe_hops(from, key).expect("lookup succeeds");
        max_hops = max_hops.max(h);
        hops.push(h as f64);
    }
    let table_sizes: Vec<f64> = (0..peers)
        .map(|i| dht.peer(i).table.size() as f64)
        .collect();
    RoutingRow {
        peers,
        skew,
        strategy: strategy.label().to_string(),
        mean_hops: mean(&hops),
        p99_hops: percentile(&hops, 99.0),
        max_hops,
        table_size: mean(&table_sizes),
        log2_n: (peers as f64).log2(),
    }
}

/// Runs the full E5 sweep.
pub fn run(params: &RoutingParams) -> Vec<RoutingRow> {
    let mut rows = Vec::new();
    for &peers in &params.peer_sweep {
        for &skew in &params.skew_sweep {
            for strategy in [RoutingStrategy::HopSpace, RoutingStrategy::Finger] {
                rows.push(measure(peers, skew, strategy, params.lookups, params.seed));
            }
        }
    }
    rows
}

/// Prints the E5 table.
pub fn print(rows: &[RoutingRow]) {
    let mut t = Table::new(
        "E5: lookup hops vs network size and identifier skew",
        &[
            "peers",
            "log2(n)",
            "skew",
            "strategy",
            "mean hops",
            "p99 hops",
            "max",
            "table size",
        ],
    );
    for r in rows {
        t.row(&[
            r.peers.to_string(),
            fmt_f(r.log2_n, 1),
            fmt_f(r.skew, 0),
            r.strategy.clone(),
            fmt_f(r.mean_hops, 2),
            fmt_f(r.p99_hops, 1),
            r.max_hops.to_string(),
            fmt_f(r.table_size, 1),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_space_hops_are_logarithmic_and_skew_invariant() {
        let uniform = measure(256, 1.0, RoutingStrategy::HopSpace, 400, 1);
        let skewed = measure(256, 64.0, RoutingStrategy::HopSpace, 400, 1);
        assert!(uniform.mean_hops <= uniform.log2_n, "{uniform:?}");
        assert!(uniform.max_hops <= 10);
        // Hop-space routing is essentially unaffected by skew.
        assert!(
            (uniform.mean_hops - skewed.mean_hops).abs() < 0.5,
            "uniform {} vs skewed {}",
            uniform.mean_hops,
            skewed.mean_hops
        );
        // Routing tables stay logarithmic.
        assert!(uniform.table_size <= uniform.log2_n + 5.0);
    }

    #[test]
    fn identifier_space_baseline_degrades_under_strong_skew() {
        let hop_space = measure(512, 128.0, RoutingStrategy::HopSpace, 500, 2);
        let finger = measure(512, 128.0, RoutingStrategy::Finger, 500, 2);
        assert!(
            finger.mean_hops > hop_space.mean_hops,
            "finger {} should exceed hop-space {} under skew",
            finger.mean_hops,
            hop_space.mean_hops
        );
        assert!(finger.max_hops >= hop_space.max_hops);
    }

    #[test]
    fn hops_grow_logarithmically_with_network_size() {
        let small = measure(64, 1.0, RoutingStrategy::HopSpace, 300, 3);
        let large = measure(1024, 1.0, RoutingStrategy::HopSpace, 300, 3);
        // 16x more peers → hops grow by roughly log2(16)/2 = 2, certainly not 16x.
        assert!(large.mean_hops > small.mean_hops);
        assert!(large.mean_hops < small.mean_hops + 4.0);
    }
}
