//! Shared workload builders for the experiments.
//!
//! All experiments draw their corpora, query logs and networks from these helpers so
//! that the same seeds produce the same workloads across experiments, benches and
//! integration tests.

use alvisp2p_core::hdk::HdkConfig;
use alvisp2p_core::network::AlvisNetwork;
use alvisp2p_core::qdi::QdiConfig;
use alvisp2p_core::strategy::{Hdk, Qdi, SingleTermFull, Strategy};
use alvisp2p_dht::DhtConfig;
use alvisp2p_textindex::{
    CorpusConfig, CorpusGenerator, QueryLog, QueryLogConfig, QueryLogGenerator, SyntheticCorpus,
};
use std::sync::Arc;

/// The default master seed of the experiment harness.
pub const DEFAULT_SEED: u64 = 20080824; // VLDB'08 started on 2008-08-24.

/// Generates a synthetic corpus of `num_docs` documents with a vocabulary that grows
/// sublinearly with the collection (Heaps-like), as real text collections do.
pub fn corpus(num_docs: usize, seed: u64) -> SyntheticCorpus {
    let vocab = ((num_docs as f64).sqrt() * 90.0).max(400.0) as usize;
    let config = CorpusConfig {
        num_docs,
        vocab_size: vocab,
        num_topics: (num_docs / 50).clamp(5, 80),
        topic_vocab: 60,
        doc_len_mean: 110,
        doc_len_spread: 50,
        ..Default::default()
    };
    CorpusGenerator::new(config, seed).generate()
}

/// Like [`corpus`], but with the vocabulary capped at `vocab` terms: the same
/// collection concentrated on fewer, more frequent terms, so every posting
/// list is longer. This is the regime where truncation, threshold-aware
/// elision and sketch pruning have the most bytes to save.
pub fn dense_corpus(num_docs: usize, vocab: usize, seed: u64) -> SyntheticCorpus {
    let config = CorpusConfig {
        num_docs,
        vocab_size: vocab,
        num_topics: (num_docs / 50).clamp(5, 80),
        topic_vocab: 60.min(vocab / 4).max(10),
        doc_len_mean: 110,
        doc_len_spread: 50,
        ..Default::default()
    };
    CorpusGenerator::new(config, seed).generate()
}

/// Generates a query log of `num_queries` multi-term queries over `corpus`.
pub fn query_log(corpus: &SyntheticCorpus, num_queries: usize, drift: bool, seed: u64) -> QueryLog {
    let config = QueryLogConfig {
        num_queries,
        distinct_queries: (num_queries / 8).clamp(20, 400),
        min_terms: 2,
        max_terms: 3,
        popularity_drift: drift,
        ..Default::default()
    };
    QueryLogGenerator::new(config, seed ^ 0x51).generate(corpus)
}

/// Generates a strongly skewed (Zipf exponent `s`) query log over `corpus` —
/// the hotspot workload of the skew/replication experiment. A higher exponent
/// concentrates more of the log on the few most popular queries.
pub fn zipf_query_log(corpus: &SyntheticCorpus, num_queries: usize, s: f64, seed: u64) -> QueryLog {
    let config = QueryLogConfig {
        num_queries,
        distinct_queries: (num_queries / 10).clamp(20, 300),
        popularity_exponent: s,
        min_terms: 2,
        max_terms: 3,
        popularity_drift: false,
        min_term_df: None,
        cooccurrence_window: None,
    };
    QueryLogGenerator::new(config, seed ^ 0x5ca1e).generate(corpus)
}

/// Generates a head-term query log: pair queries whose terms are globally
/// *frequent* (document frequency above [`default_hdk`]'s `df_max`) and
/// co-occur within its proximity window in some document — so each query's own
/// pair key is exactly the kind of multi-term key HDK activates. This is the
/// long-posting-list regime of the bandwidth experiment's threshold arms: the
/// lists behind these queries are the ones floor-based elision can shorten.
/// Pair (rather than triple) queries keep every probe family laminar, the
/// regime where the rank-safe floors certify.
pub fn head_query_log(corpus: &SyntheticCorpus, num_queries: usize, seed: u64) -> QueryLog {
    let hdk = default_hdk();
    let config = QueryLogConfig {
        num_queries,
        distinct_queries: (num_queries / 8).clamp(20, 400),
        min_terms: 2,
        max_terms: 2,
        min_term_df: Some(hdk.df_max),
        cooccurrence_window: Some(hdk.proximity_window),
        ..Default::default()
    };
    QueryLogGenerator::new(config, seed ^ 0x4ead).generate(corpus)
}

/// The HDK configuration used by the experiments unless a sweep overrides it.
pub fn default_hdk() -> HdkConfig {
    HdkConfig {
        df_max: 100,
        truncation_k: 100,
        max_key_len: 3,
        proximity_window: 20,
        use_proximity_filter: true,
    }
}

/// The QDI configuration used by the experiments unless a sweep overrides it.
pub fn default_qdi() -> QdiConfig {
    QdiConfig {
        activation_threshold: 3,
        truncation_k: 100,
        max_key_len: 3,
        obsolescence_window: 500,
        eviction_period: 100,
        require_nonredundant: true,
    }
}

/// Builds an AlvisP2P network with the given strategy and peer count, distributes the
/// corpus and builds the distributed index. Returns the ready-to-query network.
pub fn indexed_network(
    corpus: &SyntheticCorpus,
    strategy: Arc<dyn Strategy>,
    peers: usize,
    seed: u64,
) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(peers)
        .dht(DhtConfig::default())
        .strategy_arc(strategy)
        .seed(seed)
        .corpus(corpus)
        .build_indexed()
        .expect("experiment network configuration is valid")
}

/// The three strategies compared throughout the experiments, with shared parameters.
pub fn all_strategies() -> Vec<(&'static str, Arc<dyn Strategy>)> {
    vec![
        ("single-term", Arc::new(SingleTermFull)),
        ("hdk", Arc::new(Hdk::new(default_hdk()))),
        ("qdi", Arc::new(Qdi::new(default_qdi()))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_scales_vocabulary_with_size() {
        let small = corpus(200, 1);
        let large = corpus(2_000, 1);
        assert_eq!(small.len(), 200);
        assert_eq!(large.len(), 2_000);
        assert!(large.vocabulary.len() > small.vocabulary.len());
    }

    #[test]
    fn query_log_is_generated_over_the_corpus() {
        let c = corpus(200, 2);
        let log = query_log(&c, 100, false, 2);
        assert_eq!(log.len(), 100);
        assert!(log.distinct.len() >= 20);
    }

    #[test]
    fn indexed_network_is_ready_to_query() {
        let c = corpus(120, 3);
        let mut net = indexed_network(&c, Arc::new(Hdk::new(default_hdk())), 8, 3);
        assert_eq!(net.total_documents(), 120);
        assert!(net.global_index().activated_keys() > 0);
        let q = format!("{} {}", c.vocabulary[30], c.vocabulary[31]);
        let outcome = net
            .execute(&alvisp2p_core::request::QueryRequest::new(q))
            .unwrap();
        assert!(outcome.trace.probes > 0);
    }

    #[test]
    fn strategies_cover_all_three() {
        let s = all_strategies();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].0, "single-term");
        assert_eq!(s[1].0, "hdk");
        assert_eq!(s[2].0, "qdi");
    }
}
