//! Quickstart: build a small AlvisP2P network, publish documents, search.
//!
//! This mirrors the demonstration scenario of the paper: a handful of peers join the
//! network, each publishes some local documents, the distributed HDK index is built,
//! and any peer can then run multi-keyword queries against the *global* collection.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use alvisp2p::prelude::*;
use alvisp2p_netsim::TrafficCategory;

fn main() {
    // 1. Build an 8-peer network using the HDK indexing strategy.
    //    df_max is tiny because the demo corpus is tiny; real deployments use a few
    //    hundred (see EXPERIMENTS.md).
    //    Each peer publishes its local documents (the demo corpus is spread
    //    round-robin, as if every participant dropped files into its shared folder).
    let mut net = AlvisNetwork::builder()
        .peers(8)
        .strategy(Hdk::new(HdkConfig {
            df_max: 2,
            truncation_k: 5,
            ..Default::default()
        }))
        .seed(42)
        .documents(demo_corpus())
        .build()
        .expect("valid configuration");
    println!(
        "published {} documents across {} peers",
        net.total_documents(),
        net.peer_count()
    );

    // 2. Build the distributed index: single-term level plus HDK expansions.
    let report = net.build_index();
    println!(
        "built '{}' index: {} keys, {} postings, {} bytes of indexing traffic",
        report.strategy, report.activated_keys, report.total_postings, report.indexing_bytes
    );
    for level in &report.levels {
        println!(
            "  level {}: {} candidate keys ({} discriminative, {} frequent)",
            level.level, level.candidates, level.discriminative, level.frequent
        );
    }

    // 3. Any peer can now query the global collection with multiple keywords; the
    //    request asks for the two-step refinement so results carry owner metadata.
    for query in [
        "peer to peer retrieval",
        "congestion control overlay",
        "query driven indexing popularity",
    ] {
        let request = QueryRequest::new(query).top_k(5).with_refinement();
        let outcome = net.execute(&request).expect("query succeeds");
        println!("\nquery: {query:?}");
        println!(
            "  probes: {}  hops: {}  retrieval bytes: {}",
            outcome.trace.probes, outcome.hops, outcome.bytes
        );
        for (rank, r) in outcome.refined.iter().enumerate() {
            println!(
                "  {}. [{:.3}] {}  ({})",
                rank + 1,
                r.global_score,
                r.title,
                r.url
            );
            println!("       {}", r.snippet);
        }
        // Compare against what a centralized engine would return for the same query.
        let reference = net.reference_search(query, 5);
        let overlap = alvisp2p::core::stats::overlap_at_k(&outcome.results, &reference, 5);
        println!("  overlap@5 with centralized reference: {overlap:.2}");
    }

    // 4. Queries are planned before they are executed: inspect the cost-annotated
    //    probe schedule, then stream the execution probe by probe. With the
    //    cost-based planner and a byte budget, the spend never exceeds the budget.
    let request = QueryRequest::new("truncated posting lists")
        .top_k(5)
        .byte_budget(2_000);
    let plan = net
        .plan_with(&GreedyCost::default(), &request)
        .expect("planning is free");
    println!("\nplanned {:?} with a 2,000-byte budget:", request.text);
    for node in plan.probes() {
        println!(
            "  probe {:<20} est {} bytes  priority {:.4}",
            node.key.to_string(),
            node.est_bytes,
            node.priority
        );
    }
    let mut stream = net.stream(plan, request).expect("valid request");
    while let Some(event) = stream.next_event() {
        let event = event.expect("probe succeeds");
        println!(
            "  -> {:<20} {:?}  {} bytes (total {})  top-1: {:?}",
            event.key.to_string(),
            event.outcome,
            event.bytes,
            event.spent_bytes,
            event.top_k.first().map(|r| r.doc)
        );
    }
    let planned_outcome = stream.finish().expect("query succeeds");
    println!(
        "  planned query spent {} bytes (budget 2,000), {} probes, truncated by budget: {}",
        planned_outcome.bytes, planned_outcome.trace.probes, planned_outcome.budget_exhausted
    );

    // 5. Fetch the top document of the last query from its hosting peer.
    let outcome = net
        .execute(
            &QueryRequest::new("access rights shared documents")
                .from_peer(3)
                .top_k(3),
        )
        .unwrap();
    if let Some(top) = outcome.results.first() {
        match net.fetch_document(top.doc, &Credentials::anonymous()) {
            alvisp2p::core::FetchOutcome::Full(doc) => {
                println!(
                    "\nfetched {} ({} bytes) from peer {}",
                    doc.title,
                    doc.body.len(),
                    doc.id.peer
                )
            }
            other => println!("\nfetch outcome: {other:?}"),
        }
    }

    // 6. The traffic report shows where the bytes went.
    println!("\ntraffic report:\n{}", net.traffic().report());
    println!(
        "retrieval traffic so far: {} bytes in {} messages",
        net.traffic().category(TrafficCategory::Retrieval).bytes,
        net.traffic().category(TrafficCategory::Retrieval).messages
    );
}
