//! Overlay robustness: peer churn and congestion control.
//!
//! Two demonstrations of the layer-2 mechanisms the IR layers depend on:
//!
//! 1. **Churn** — peers join, leave gracefully and fail abruptly while the network
//!    keeps answering queries; graceful departures hand their index slice to their
//!    successor, abrupt failures lose only the failed peer's slice (documents always
//!    stay with their owners and can be re-published).
//! 2. **Congestion control** — a hot-spot workload (every client hammers the few peers
//!    responsible for a popular key) is run with and without the AIMD congestion
//!    controller; without it the overlay collapses under overload, with it goodput
//!    stays near server capacity.
//! 3. **Hot-key replication** — a Zipf query hotspot pushes the popular keys over the
//!    replication threshold; their posting lists spread onto the ring successors, the
//!    probe serve load spreads with them, answers stay byte-identical, and the hot
//!    keys survive the abrupt failure of their primary.
//! 4. **Fault injection and failover** — a seeded fault plane drops 15% of probe
//!    messages and crashes the replica currently serving the hottest key; without
//!    retries the answer silently degrades (and says so in its completeness report),
//!    while the default retry + replica-failover policy recovers the fault-free
//!    answer at a modest byte overhead.
//! 5. **Lost publications and anti-entropy repair** — a third of the index-build
//!    publications are dropped in flight, leaving the global index incomplete; the
//!    bounded-backoff re-publication schedule drains the un-acked set until queries
//!    match the fault-free build, and a repair round heals a bit-rotted replica
//!    copy that silent corruption left behind.
//!
//! Run with:
//! ```text
//! cargo run --release --example churn_and_congestion
//! ```

use alvisp2p::dht::congestion::{run_hotspot, CongestionConfig, HotspotScenario};
use alvisp2p::netsim::SimDuration;
use alvisp2p::prelude::*;

fn churn_demo() {
    println!("=== churn demo ===");
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(), 3).generate();
    let mut net = AlvisNetwork::builder()
        .peers(24)
        .strategy(Hdk::new(HdkConfig {
            df_max: 10,
            truncation_k: 20,
            ..Default::default()
        }))
        .seed(5)
        .corpus(&corpus)
        .build_indexed()
        .expect("valid configuration");
    let keys_before = net.global_index().activated_keys();
    println!("peers: {}, activated keys: {keys_before}", net.peer_count());

    // Query with two mid-frequency vocabulary terms (head terms can be stopword-like).
    let query = format!("{} {}", corpus.vocabulary[60], corpus.vocabulary[61]);
    let request = QueryRequest::new(query.clone());
    let before = net.execute(&request).unwrap();
    println!(
        "query {query:?} before churn: {} results",
        before.results.len()
    );

    // Graceful departures: their index slices move to the successors.
    {
        let dht = net.global_index_mut().dht_mut();
        dht.leave(3).unwrap();
        dht.leave(11).unwrap();
        // New peers join and take over part of the key space.
        dht.join(RingId::hash_u64(0xABCD));
        dht.join(RingId::hash_u64(0xBEEF));
        // One abrupt failure: that peer's slice of the global index is lost.
        let lost = dht.fail(17).unwrap();
        println!("abrupt failure of peer 17 lost {lost} keys of the global index");
    }

    let keys_after = net.global_index().activated_keys();
    let after = net.execute(&request).unwrap();
    println!(
        "after churn: activated keys {keys_after} (graceful churn preserves them), \
         query returns {} results",
        after.results.len()
    );
    println!("overlay traffic:\n{}", net.traffic().report());
}

fn congestion_demo() {
    println!("\n=== congestion-control demo ===");
    println!(
        "{:>14} {:>16} {:>16} {:>12} {:>12}",
        "offered req/s", "goodput (cc on)", "goodput (cc off)", "drops on", "drops off"
    );
    for offered in [500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0] {
        let base = HotspotScenario {
            clients: 32,
            servers: 4,
            offered_load: offered,
            duration: SimDuration::from_secs(3),
            hotspot_skew: 1.2,
            ..Default::default()
        };
        let with_cc = run_hotspot(
            &HotspotScenario {
                congestion: CongestionConfig::default(),
                ..base.clone()
            },
            42,
        );
        let without_cc = run_hotspot(
            &HotspotScenario {
                congestion: CongestionConfig::disabled(),
                ..base
            },
            42,
        );
        println!(
            "{:>14.0} {:>16.0} {:>16.0} {:>12} {:>12}",
            offered, with_cc.goodput, without_cc.goodput, with_cc.drops, without_cc.drops
        );
    }
    println!("(goodput = completed requests per second of offered load window)");
}

fn replication_demo() {
    println!("\n=== hot-key replication demo ===");
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(), 3).generate();
    let build = |policy: std::sync::Arc<dyn ReplicationPolicy>| {
        AlvisNetwork::builder()
            .peers(24)
            .strategy(Hdk::new(HdkConfig {
                df_max: 10,
                truncation_k: 20,
                ..Default::default()
            }))
            .replication(policy)
            .seed(5)
            .corpus(&corpus)
            .build_indexed()
            .expect("valid configuration")
    };
    let mut plain = build(std::sync::Arc::new(NoReplication));
    let mut net = build(std::sync::Arc::new(HotKeyReplication::new(3)));

    // A Zipf-style hotspot: one popular query dominates the log.
    let hot_query = format!("{} {}", corpus.vocabulary[60], corpus.vocabulary[61]);
    let max_served = |net: &AlvisNetwork| {
        let dht = net.global_index().dht();
        dht.live_peer_indices()
            .into_iter()
            .map(|i| dht.peer(i).served_requests)
            .max()
            .unwrap_or(0)
    };
    let mut answers_match = true;
    for i in 0..120 {
        let request = QueryRequest::new(hot_query.clone()).from_peer(i % 24);
        let a = plain.execute(&request).unwrap();
        let b = net.execute(&request).unwrap();
        answers_match &= a.results.iter().map(|r| r.doc).collect::<Vec<_>>()
            == b.results.iter().map(|r| r.doc).collect::<Vec<_>>();
    }
    let replication = net.global_index().dht().replication();
    println!(
        "after 120 hot queries: {} keys replicated, {} probes served by replicas, \
         answers identical to the unreplicated overlay: {answers_match}",
        replication.replicated_keys(),
        replication.stats().replica_serves,
    );
    println!(
        "hottest peer served {} probes without replication vs {} with it",
        max_served(&plain),
        max_served(&net),
    );

    // Fail the hottest key's primary: the replicas recover its posting list.
    let dht = net.global_index_mut().dht_mut();
    let hot_key = dht
        .replication()
        .replicated_key_list()
        .into_iter()
        .max_by(|a, b| {
            dht.replication()
                .key_load(*a)
                .total_cmp(&dht.replication().key_load(*b))
        })
        .expect("the hotspot replicated at least one key");
    let primary = dht.responsible_for(hot_key).unwrap();
    dht.fail(primary).unwrap();
    let recovered = dht.replication().stats().recovered;
    let response = net
        .execute(&QueryRequest::new(hot_query.clone()).from_peer(0))
        .unwrap();
    println!(
        "failed the hot key's primary (peer {primary}): {recovered} replicated keys \
         recovered from their holders, hot query still returns {} results",
        response.results.len()
    );
}

fn fault_tolerance_demo() {
    println!("\n=== fault-injection and failover demo ===");
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(), 3).generate();
    let build = |policy: RetryPolicy| {
        AlvisNetwork::builder()
            .peers(24)
            .strategy(Hdk::new(HdkConfig {
                df_max: 10,
                truncation_k: 20,
                ..Default::default()
            }))
            .replication(std::sync::Arc::new(HotKeyReplication::new(3)))
            .retry_policy(policy)
            .seed(5)
            .corpus(&corpus)
            .build_indexed()
            .expect("valid configuration")
    };
    let mut fragile = build(RetryPolicy::none());
    let mut robust = build(RetryPolicy::default());

    // Warm the hotspot fault-free so replication heats identically in both
    // overlays, and record the fault-free answer as the reference.
    let hot_query = format!("{} {}", corpus.vocabulary[60], corpus.vocabulary[61]);
    let mut reference: Vec<DocId> = Vec::new();
    for i in 0..120 {
        let request = QueryRequest::new(hot_query.clone()).from_peer(i % 24);
        let _ = fragile.execute(&request).unwrap();
        reference = robust
            .execute(&request)
            .unwrap()
            .results
            .iter()
            .map(|r| r.doc)
            .collect();
    }

    // Crash the replica currently serving the hottest key (serve selection is
    // fault-unaware, so probes keep landing on it — failover is the only
    // escape) and drop 15% of probe messages on top.
    let victim = {
        let dht = robust.global_index().dht();
        let hot_key = dht
            .replication()
            .replicated_key_list()
            .into_iter()
            .max_by(|a, b| {
                dht.replication()
                    .key_load(*a)
                    .total_cmp(&dht.replication().key_load(*b))
            })
            .expect("the hotspot replicated at least one key");
        dht.least_loaded_holder(hot_key)
            .unwrap_or_else(|| dht.responsible_for(hot_key).unwrap())
    };
    let plane = || {
        let mut plane = FaultPlane::seeded(7).with_loss(0.15);
        plane.crash(victim);
        plane
    };
    *fragile.fault_plane_mut() = plane();
    *robust.fault_plane_mut() = plane();
    println!("crashed the hot key's serving replica (peer {victim}) and injected 15% loss");

    let report = |label: &str, net: &mut AlvisNetwork| {
        let (mut overlap, mut retries, mut failed, mut completeness) = (0.0, 0, 0, 0.0);
        let rounds = 60;
        for i in 0..rounds {
            let origin = (i % 24 + usize::from(i % 24 == victim)) % 24;
            let request = QueryRequest::new(hot_query.clone()).from_peer(origin);
            let response = net.execute(&request).unwrap();
            let got: Vec<DocId> = response.results.iter().map(|r| r.doc).collect();
            let hits = reference.iter().filter(|d| got.contains(d)).count();
            overlap += hits as f64 / reference.len().max(1) as f64;
            retries += response.retries;
            failed += response.failed_probes;
            completeness += response.completeness.fraction();
        }
        let n = rounds as f64;
        println!(
            "{label:>24}: answer overlap vs fault-free {:.2}, {retries} retries, \
             {failed} failed probes, mean completeness {:.2}",
            overlap / n,
            completeness / n,
        );
    };
    report("no-retry", &mut fragile);
    report("retry+failover (default)", &mut robust);
}

fn control_plane_repair_demo() {
    println!("\n=== lost-publication re-publish and anti-entropy repair demo ===");
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(), 3).generate();
    let build = |plane: FaultPlane| {
        AlvisNetwork::builder()
            .peers(24)
            .strategy(Hdk::new(HdkConfig {
                df_max: 10,
                truncation_k: 20,
                ..Default::default()
            }))
            .replication(std::sync::Arc::new(HotKeyReplication::new(3)))
            .faults(plane)
            .seed(5)
            .corpus(&corpus)
            .build_indexed()
            .expect("valid configuration")
    };
    let hot_query = format!("{} {}", corpus.vocabulary[60], corpus.vocabulary[61]);
    let reference: Vec<DocId> = build(FaultPlane::NoFaults)
        .execute(&QueryRequest::new(hot_query.clone()).from_peer(0))
        .unwrap()
        .results
        .iter()
        .map(|r| r.doc)
        .collect();

    // A third of the build's publications are lost in flight: the publisher
    // keeps them pending, and queries run on an incomplete global index.
    let mut net = build(FaultPlane::seeded(21).with_publish_loss(0.35));
    let overlap = |net: &mut AlvisNetwork| {
        let got: Vec<DocId> = net
            .execute(&QueryRequest::new(hot_query.clone()).from_peer(0))
            .unwrap()
            .results
            .iter()
            .map(|r| r.doc)
            .collect();
        reference.iter().filter(|d| got.contains(d)).count() as f64 / reference.len().max(1) as f64
    };
    println!(
        "lossy build: {} publications un-acked, hot-query overlap vs fault-free {:.2}",
        net.pending_publishes(),
        overlap(&mut net),
    );

    // The bounded-backoff schedule re-sends every pending publication (the
    // re-sends are charged to Overlay, not Indexing) until all are acked.
    let mut rounds = 0;
    while net.pending_publishes() > 0 {
        net.republish_round();
        rounds += 1;
    }
    println!(
        "after {rounds} re-publication rounds: 0 pending, overlap {:.2}",
        overlap(&mut net),
    );

    // Heat the hot keys over the replication threshold, bit-rot one replica
    // copy, and let an anti-entropy round find and heal it via checksums.
    for i in 0..120 {
        let _ = net
            .execute(&QueryRequest::new(hot_query.clone()).from_peer(i % 24))
            .unwrap();
    }
    {
        let dht = net.global_index_mut().dht_mut();
        let key = dht
            .replication()
            .replicated_key_list()
            .into_iter()
            .next()
            .expect("the hotspot replicated at least one key");
        let holder = dht.replica_holders(key)[0];
        dht.corrupt_replica_copy(key, holder);
    }
    println!(
        "bit-rotted one replica copy: consistency {:.3}",
        net.replica_consistency()
    );
    let report = net.repair_round();
    println!(
        "one repair round: {} digests exchanged, {} corrupt found, {} repaired, \
         consistency {:.3}",
        report.digests_exchanged,
        report.corrupt,
        report.repaired,
        net.replica_consistency()
    );
}

fn main() {
    churn_demo();
    congestion_demo();
    replication_demo();
    fault_tolerance_demo();
    control_plane_repair_demo();
}
