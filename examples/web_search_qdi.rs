//! Web-search scenario with Query-Driven Indexing.
//!
//! A larger synthetic "web" collection is spread over 32 peers and queried with a
//! Zipfian query log. The network starts with only the single-term (truncated) index;
//! as popular multi-keyword queries repeat, the responsible peers activate the popular
//! term combinations on demand, and retrieval quality measurably improves while the
//! per-query bandwidth stays bounded. Halfway through, query popularity drifts and the
//! index adapts (obsolete keys are evicted, new ones activated).
//!
//! Run with:
//! ```text
//! cargo run --release --example web_search_qdi
//! ```

use alvisp2p::core::stats::{mean, overlap_at_k};
use alvisp2p::prelude::*;

fn main() {
    // --- Workload ---------------------------------------------------------------
    let corpus = CorpusGenerator::new(
        CorpusConfig {
            num_docs: 2_000,
            vocab_size: 4_000,
            num_topics: 20,
            ..Default::default()
        },
        11,
    )
    .generate();
    let log = QueryLogGenerator::new(
        QueryLogConfig {
            num_queries: 1_200,
            distinct_queries: 120,
            popularity_drift: true,
            ..Default::default()
        },
        13,
    )
    .generate(&corpus);

    // --- Network ----------------------------------------------------------------
    let mut net = AlvisNetwork::builder()
        .peers(32)
        .strategy(Qdi::new(QdiConfig {
            activation_threshold: 3,
            truncation_k: 50,
            obsolescence_window: 400,
            eviction_period: 100,
            ..Default::default()
        }))
        .seed(17)
        .corpus(&corpus)
        .build()
        .expect("valid configuration");
    let report = net.build_index();
    println!(
        "initial single-term index: {} keys, {} postings",
        report.activated_keys, report.total_postings
    );

    // --- Query stream -----------------------------------------------------------
    const WINDOW: usize = 200;
    let mut window_overlap: Vec<f64> = Vec::new();
    let mut window_bytes: Vec<f64> = Vec::new();
    println!(
        "\n{:>8} {:>12} {:>14} {:>12} {:>10} {:>10}",
        "queries", "overlap@10", "bytes/query", "multi-hits", "activated", "evicted"
    );
    for (i, q) in log.queries.iter().enumerate() {
        let origin = i % net.peer_count();
        let outcome = net
            .execute(&QueryRequest::new(q.text.clone()).from_peer(origin))
            .expect("query succeeds");
        let reference = net.reference_search(&q.text, 10);
        window_overlap.push(overlap_at_k(&outcome.results, &reference, 10));
        window_bytes.push(outcome.bytes as f64);

        if (i + 1) % WINDOW == 0 {
            let r = net.qdi_report();
            println!(
                "{:>8} {:>12.3} {:>14.0} {:>12} {:>10} {:>10}",
                i + 1,
                mean(&window_overlap),
                mean(&window_bytes),
                r.multi_term_hits,
                r.activations,
                r.evictions
            );
            window_overlap.clear();
            window_bytes.clear();
        }
    }

    let r = net.qdi_report();
    println!(
        "\nfinal QDI state: {} activations, {} evictions, {} bytes of on-demand indexing",
        r.activations, r.evictions, r.acquisition_bytes
    );
    println!(
        "activated multi-term keys now in the index: {}",
        net.global_index()
            .activated_key_list()
            .iter()
            .filter(|k| k.len() > 1)
            .count()
    );
    // --- Budget-planned retrieval over the adapted index -------------------------
    // The cost-based planner spends a tight per-query byte budget on the most
    // valuable keys (the activated combinations and rare singles) and — unlike
    // the best-effort cutoff — never exceeds it.
    let popular = &log.queries[log.queries.len() - 1].text;
    let request = QueryRequest::new(popular.clone()).byte_budget(3_000);
    let plan = net
        .plan_with(&GreedyCost::default(), &request)
        .expect("planning is free");
    let outcome = net.run(&plan, &request).expect("query succeeds");
    let reference = net.reference_search(popular, 10);
    println!(
        "\nbudget-planned query {popular:?}: {} of {} scheduled probes sent, \
         {} bytes (budget 3,000), overlap@10 {:.2}",
        outcome.trace.probes,
        plan.scheduled_probes(),
        outcome.bytes,
        overlap_at_k(&outcome.results, &reference, 10)
    );

    println!("\ntraffic report:\n{}", net.traffic().report());
}
