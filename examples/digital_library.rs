//! Digital-library scenario: heterogeneous peers, document digests and access rights.
//!
//! The paper's motivating example is a specialized digital library that processes its
//! own documents with a sophisticated local engine, exports an *Alvis document digest*
//! and makes the collection searchable by the whole P2P network — while keeping the
//! documents (and their access control) at the library.
//!
//! This example shows the full flow:
//! 1. a "library" collection is indexed by an external engine and exported as a digest;
//! 2. a gateway peer imports the digest and publishes it into the global index;
//! 3. other peers find library documents through the distributed index;
//! 4. restricted documents require credentials when fetched from the owner;
//! 5. the two-step refinement forwards the query to the owning peer's local engine.
//!
//! Run with:
//! ```text
//! cargo run --example digital_library
//! ```

use alvisp2p::prelude::*;
use alvisp2p::textindex::AccessRights;

fn library_documents() -> Vec<(&'static str, &'static str, AccessRights)> {
    vec![
        (
            "Medieval manuscripts of the Alpine monasteries",
            "digitized medieval manuscripts with annotations transcriptions and provenance \
             records curated by the monastery archive",
            AccessRights::Public,
        ),
        (
            "Restricted incunabula scans",
            "high resolution incunabula scans available to registered researchers studying \
             early printing techniques",
            AccessRights::Restricted {
                username: "researcher".into(),
                password: "gutenberg".into(),
            },
        ),
        (
            "Catalogue of rare cartography",
            "catalogue of rare cartography maps atlases and portolan charts from the \
             fifteenth to the eighteenth century",
            AccessRights::Public,
        ),
        (
            "Embargoed acquisitions list",
            "embargoed list of upcoming acquisitions and donations pending legal review",
            AccessRights::Private,
        ),
    ]
}

fn main() {
    // A 6-peer network; peer 0 acts as the digital library's gateway. The other
    // peers publish ordinary web-style documents.
    let mut net = AlvisNetwork::builder()
        .peers(6)
        .strategy(Hdk::new(HdkConfig {
            df_max: 2,
            truncation_k: 5,
            ..Default::default()
        }))
        .seed(7)
        .documents(demo_corpus())
        .build()
        .expect("valid configuration");

    // --- Step 1: the library's external engine builds its collection and a digest ---
    // We model the external engine as a standalone AlvisPeer that never joins the
    // network; only its digest does.
    let mut external_engine = alvisp2p::core::AlvisPeer::new(999);
    for (title, body, access) in library_documents() {
        let doc =
            alvisp2p::textindex::Document::new(DocId::new(999, 0), title, body).with_access(access);
        external_engine.publish_document(doc);
    }
    let digest: DocumentDigest = external_engine.export_digest();
    let digest_json = digest.to_json().expect("digest serialises");
    println!(
        "library digest: {} documents, {} bytes of JSON",
        digest.len(),
        digest_json.len()
    );

    // --- Step 2: the gateway peer imports the digest ---
    let imported = net.peer_mut(0).import_digest(&digest);
    println!(
        "gateway peer 0 imported {} library documents",
        imported.len()
    );

    // Rebuild the distributed index so the library's terms are globally searchable.
    let report = net.build_index();
    println!(
        "global index: {} keys / {} postings ({} bytes stored)",
        report.activated_keys, report.total_postings, report.storage_bytes
    );

    // --- Step 3: another peer searches for library content ---
    // Interactive searches stop paying network cost once the top-k stabilises:
    // each query is planned, then executed under a `StableTopK` observer that
    // terminates the probe schedule early when two consecutive probes leave the
    // running top-k unchanged.
    for query in [
        "medieval manuscripts",
        "rare cartography maps",
        "incunabula scans",
    ] {
        let request = QueryRequest::new(query).from_peer(4).top_k(5);
        let plan = net.plan(&request).expect("planning is free");
        let mut observer = StableTopK::new(2);
        let outcome = net
            .run_observed(&plan, &request, &mut observer)
            .expect("query succeeds");
        println!(
            "\npeer 4 searches {query:?}: {} results ({} of {} scheduled probes sent)",
            outcome.results.len(),
            outcome.trace.probes,
            plan.scheduled_probes(),
        );
        for r in &outcome.results {
            println!(
                "  [{:.3}] doc {} owned by peer {}",
                r.score, r.doc.local, r.doc.peer
            );
        }
    }

    // --- Step 4: access rights are enforced by the owner ---
    // The restricted incunabula document lives at the *external engine*; fetching it
    // from the gateway fails, which is exactly the design: documents stay with their
    // owner. For documents the gateway itself hosts, credentials are checked.
    // The restricted library documents are hosted at the external engine, so fetching
    // them through the gateway reports `NotFound` (documents stay with their owner).
    // For a document the gateway itself hosts with restricted rights, credentials are
    // checked — demonstrate that with a restricted document published at peer 3.
    let restricted = net.peer_mut(3).publish_document(
        alvisp2p::textindex::Document::new(
            DocId::new(3, 900),
            "Reading-room access policy",
            "restricted reading room access policy for visiting researchers",
        )
        .with_access(AccessRights::Restricted {
            username: "researcher".into(),
            password: "gutenberg".into(),
        }),
    );
    println!("\nfetching a restricted document without credentials:");
    println!(
        "  -> {:?}",
        net.fetch_document(restricted, &Credentials::anonymous())
    );
    println!("fetching with researcher credentials:");
    match net.fetch_document(restricted, &Credentials::basic("researcher", "gutenberg")) {
        alvisp2p::core::FetchOutcome::Full(doc) => println!("  -> full document: {}", doc.title),
        other => println!("  -> {other:?}"),
    }

    // --- Step 5: two-step refinement against the owners' local engines ---
    let outcome = net
        .execute(
            &QueryRequest::new("manuscripts archive annotations")
                .from_peer(5)
                .top_k(5)
                .with_refinement(),
        )
        .unwrap();
    println!("\nrefined results (owner's local engine consulted):");
    for r in outcome.refined {
        println!(
            "  global {:.3} / local {:?}  {}  {}",
            r.global_score,
            r.local_score.map(|s| (s * 1000.0).round() / 1000.0),
            if r.title.is_empty() {
                "[external document]"
            } else {
                &r.title
            },
            r.snippet
        );
    }

    println!("\ntraffic report:\n{}", net.traffic().report());
}
